// Package mpi is a from-scratch message-passing library with MPI semantics,
// standing in for the modified MPICH2 the paper uses. It provides blocking
// point-to-point operations with (source, tag) matching, the standard
// collectives, and MPI_Wtime, over two interchangeable transports:
//
//   - a TCP loopback transport bootstrapped through PMI (internal/pmi),
//     reproducing the MPICH2-over-ZeptoOS-sockets path JETS launches; and
//   - an in-process channel transport reproducing the vendor-native fabric
//     ("native" mode in the paper's Fig. 8 comparison).
//
// A JETS-launched user process calls InitEnv, which reads the PMI_* variables
// the Hydra proxy provides, wires up with its peers, and returns the world
// communicator.
package mpi

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"jets/internal/pmi"
)

// Wildcards for Recv.
const (
	AnySource = -1
	AnyTag    = -1
)

// internal tags are negative; user tags must be non-negative.
var errBadTag = errors.New("mpi: user message tags must be >= 0")

// Comm is a communicator: the process's endpoint in a job. The world
// communicator owns the transport; subcommunicators created by Split share
// it under a distinct context ID.
type Comm struct {
	rank  int
	size  int
	ctx   uint32
	q     *matchQueue
	tr    transport
	start time.Time

	// group maps local rank -> world rank; nil means identity (world).
	group   []int
	toLocal map[int]int // world rank -> local rank; nil for world

	// owned marks the communicator that tears down the transport on Close.
	owned bool

	mu       sync.Mutex
	collSeq  int
	splitSeq int
	closed   bool

	// pc is set for PMI-bootstrapped communicators and finalized on Close.
	pc *pmi.Client
}

// worldRank translates a local rank to the transport's world rank space.
func (c *Comm) worldRank(local int) int {
	if c.group == nil {
		return local
	}
	return c.group[local]
}

// localRank translates a world rank back into this communicator.
func (c *Comm) localRank(world int) int {
	if c.toLocal == nil {
		return world
	}
	return c.toLocal[world]
}

// Rank returns this process's rank in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of processes in the communicator.
func (c *Comm) Size() int { return c.size }

// Wtime returns elapsed seconds since the communicator was created,
// mirroring MPI_Wtime.
func (c *Comm) Wtime() float64 { return time.Since(c.start).Seconds() }

// Send delivers data to rank dst with the given tag. Sends are eager: they
// buffer at the receiver and do not block waiting for a matching Recv.
func (c *Comm) Send(dst, tag int, data []byte) error {
	if tag < 0 {
		return errBadTag
	}
	if dst < 0 || dst >= c.size {
		return fmt.Errorf("mpi: send to invalid rank %d", dst)
	}
	return c.tr.send(c.ctx, c.worldRank(dst), tag, data)
}

// Recv blocks until a message matching (src, tag) arrives. Use AnySource
// and/or AnyTag as wildcards.
func (c *Comm) Recv(src, tag int) (Message, error) {
	if tag < 0 && tag != AnyTag {
		return Message{}, errBadTag
	}
	if src != AnySource && (src < 0 || src >= c.size) {
		return Message{}, fmt.Errorf("mpi: recv from invalid rank %d", src)
	}
	return c.irecv(src, tag)
}

// Sendrecv sends data to dst and receives a message from src in one call,
// the classic exchange primitive. Because sends are eager this cannot
// deadlock in symmetric exchanges.
func (c *Comm) Sendrecv(dst, dtag int, data []byte, src, stag int) (Message, error) {
	if err := c.Send(dst, dtag, data); err != nil {
		return Message{}, err
	}
	return c.Recv(src, stag)
}

// Probe reports whether a matching message is already queued, without
// removing it.
func (c *Comm) Probe(src, tag int) bool {
	wsrc := src
	if src != AnySource {
		if src < 0 || src >= c.size {
			return false
		}
		wsrc = c.worldRank(src)
	}
	return c.q.peek(c.ctx, wsrc, tag)
}

// internal send/recv shared by the public operations and the collectives
// (which use the negative tag space). Ranks are local to this communicator;
// translation to the world rank space happens here.
func (c *Comm) isend(dst, tag int, data []byte) error {
	return c.tr.send(c.ctx, c.worldRank(dst), tag, data)
}

func (c *Comm) irecv(src, tag int) (Message, error) {
	wsrc := src
	if src != AnySource {
		wsrc = c.worldRank(src)
	}
	m, err := c.q.pop(c.ctx, wsrc, tag)
	if err != nil {
		return m, err
	}
	m.Src = c.localRank(m.Src)
	return m, nil
}

// nextCollTag reserves a fresh negative tag block for one collective
// operation. MPI requires all ranks to invoke collectives in the same order,
// so sequence numbers agree across the communicator.
func (c *Comm) nextCollTag() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.collSeq++
	return -(c.collSeq * 64)
}

// Close finalizes the communicator: the transport is torn down and, for
// PMI-bootstrapped communicators, the rank reports finalize to the process
// manager.
func (c *Comm) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	if !c.owned {
		// Subcommunicators share the parent's transport; freeing them is a
		// no-op on the wire, as with MPI_Comm_free.
		return nil
	}
	err := c.tr.close()
	if c.pc != nil {
		if ferr := c.pc.Finalize(); err == nil {
			err = ferr
		}
	}
	return err
}

// ---------------------------------------------------------------------------
// Bootstrap

// InitPMI wires up a TCP-transport communicator through an established PMI
// client (address publish, barrier, lazy connect).
func InitPMI(pc *pmi.Client) (*Comm, error) {
	q := newMatchQueue()
	tr, err := newTCPTransport(pc, q)
	if err != nil {
		return nil, err
	}
	return &Comm{
		rank:  pc.Rank(),
		size:  pc.Size(),
		q:     q,
		tr:    tr,
		start: time.Now(),
		owned: true,
		pc:    pc,
	}, nil
}

// InitEnv bootstraps from the PMI_* environment variables set by the Hydra
// proxy, as a JETS-launched executable would.
func InitEnv() (*Comm, error) {
	pc, err := pmi.DialEnv()
	if err != nil {
		return nil, err
	}
	return InitPMI(pc)
}

// InitEnvFrom bootstraps from an explicit environment map. In-process app
// functions (hydra.FuncRunner) receive their environment this way instead of
// inheriting a process environment.
func InitEnvFrom(env map[string]string) (*Comm, error) {
	addr := env[pmi.EnvPort]
	if addr == "" {
		return nil, errors.New("mpi: " + pmi.EnvPort + " not set")
	}
	rank, err := strconv.Atoi(env[pmi.EnvRank])
	if err != nil {
		return nil, fmt.Errorf("mpi: bad %s: %v", pmi.EnvRank, err)
	}
	return Init(addr, rank)
}

// Init dials the PMI server at addr for the given rank and wires up. It is
// the programmatic form of InitEnv.
func Init(addr string, rank int) (*Comm, error) {
	pc, err := pmi.Dial(addr, rank)
	if err != nil {
		return nil, err
	}
	return InitPMI(pc)
}

// RunLocal executes fn as an n-process job over the in-process channel
// transport ("native" fabric). It blocks until every rank returns and
// reports the first non-nil error. Communicators are closed automatically.
func RunLocal(n int, fn func(c *Comm) error) error {
	if n <= 0 {
		return fmt.Errorf("mpi: RunLocal size %d", n)
	}
	fabric := newLocalFabric(n)
	start := time.Now()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		comm := &Comm{
			rank:  rank,
			size:  n,
			q:     fabric.queues[rank],
			tr:    &localTransport{fabric: fabric, rank: rank},
			start: start,
			owned: true,
		}
		wg.Add(1)
		go func(rank int, comm *Comm) {
			defer wg.Done()
			defer comm.Close()
			errs[rank] = fn(comm)
		}(rank, comm)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			return fmt.Errorf("mpi: rank %d: %w", rank, err)
		}
	}
	return nil
}

// RunTCP executes fn as an n-process job over the TCP/PMI path: it stands up
// a PMI server (the mpiexec role), runs n ranks as goroutines each doing the
// full socket wire-up, and reports the first error. This is the test and
// benchmark harness for the "MPICH/sockets" mode.
func RunTCP(n int, fn func(c *Comm) error) error {
	if n <= 0 {
		return fmt.Errorf("mpi: RunTCP size %d", n)
	}
	srv, err := pmi.NewServer(fmt.Sprintf("kvs_%d", time.Now().UnixNano()), n)
	if err != nil {
		return err
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			comm, err := Init(addr, rank)
			if err != nil {
				errs[rank] = err
				return
			}
			defer comm.Close()
			errs[rank] = fn(comm)
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			return fmt.Errorf("mpi: rank %d: %w", rank, err)
		}
	}
	return nil
}

package mpi

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSplitEvenOdd(t *testing.T) {
	forEachTransport(t, 6, func(c *Comm) error {
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		if sub.Size() != 3 {
			return fmt.Errorf("sub size %d", sub.Size())
		}
		// New rank = position among same-color ranks ordered by key.
		wantRank := c.Rank() / 2
		if sub.Rank() != wantRank {
			return fmt.Errorf("world %d: sub rank %d want %d", c.Rank(), sub.Rank(), wantRank)
		}
		// Collective inside the subcommunicator only.
		sum, err := sub.AllreduceInt64(OpSum, []int64{int64(c.Rank())})
		if err != nil {
			return err
		}
		want := int64(0 + 2 + 4)
		if c.Rank()%2 == 1 {
			want = 1 + 3 + 5
		}
		if sum[0] != want {
			return fmt.Errorf("world %d: sum %d want %d", c.Rank(), sum[0], want)
		}
		return sub.Close()
	})
}

func TestSplitKeyReordersRanks(t *testing.T) {
	if err := RunLocal(4, func(c *Comm) error {
		// Reverse ordering via keys.
		sub, err := c.Split(0, -c.Rank())
		if err != nil {
			return err
		}
		want := c.Size() - 1 - c.Rank()
		if sub.Rank() != want {
			return fmt.Errorf("world %d got sub rank %d want %d", c.Rank(), sub.Rank(), want)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitUndefinedColor(t *testing.T) {
	if err := RunLocal(4, func(c *Comm) error {
		color := 0
		if c.Rank() == 3 {
			color = UndefinedColor
		}
		sub, err := c.Split(color, 0)
		if err != nil {
			return err
		}
		if c.Rank() == 3 {
			if sub != nil {
				return fmt.Errorf("undefined color got a communicator")
			}
			return nil
		}
		if sub.Size() != 3 {
			return fmt.Errorf("sub size %d", sub.Size())
		}
		return sub.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitTrafficIsolation(t *testing.T) {
	// Same tags in parent and child must not cross-match.
	if err := RunLocal(2, func(c *Comm) error {
		sub, err := c.Dup()
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := c.Send(1, 5, []byte("parent")); err != nil {
				return err
			}
			if err := sub.Send(1, 5, []byte("child")); err != nil {
				return err
			}
			return nil
		}
		// Receive from the child context first; it must NOT deliver the
		// parent's message even though it was sent first with the same tag.
		m, err := sub.Recv(0, 5)
		if err != nil {
			return err
		}
		if string(m.Data) != "child" {
			return fmt.Errorf("child recv got %q", m.Data)
		}
		m, err = c.Recv(0, 5)
		if err != nil {
			return err
		}
		if string(m.Data) != "parent" {
			return fmt.Errorf("parent recv got %q", m.Data)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitOfSplit(t *testing.T) {
	if err := RunLocal(8, func(c *Comm) error {
		half, err := c.Split(c.Rank()/4, c.Rank()) // two halves of 4
		if err != nil {
			return err
		}
		quarter, err := half.Split(half.Rank()/2, half.Rank()) // pairs
		if err != nil {
			return err
		}
		if quarter.Size() != 2 {
			return fmt.Errorf("quarter size %d", quarter.Size())
		}
		sum, err := quarter.AllreduceInt64(OpSum, []int64{int64(c.Rank())})
		if err != nil {
			return err
		}
		// Pairs are (0,1),(2,3),(4,5),(6,7) in world ranks.
		base := (c.Rank() / 2) * 2
		if sum[0] != int64(base+base+1) {
			return fmt.Errorf("world %d: pair sum %d", c.Rank(), sum[0])
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitInvalidColor(t *testing.T) {
	if err := RunLocal(1, func(c *Comm) error {
		if _, err := c.Split(-7, 0); err == nil {
			return fmt.Errorf("negative color accepted")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveCtxDisjoint(t *testing.T) {
	seen := map[uint32]bool{0: true}
	for seq := 1; seq <= 100; seq++ {
		v := deriveCtx(0, seq)
		if seen[v] {
			t.Fatalf("ctx collision at seq %d", seq)
		}
		seen[v] = true
	}
}

// ---------------------------------------------------------------------------
// Collective I/O

// countingFile is an in-memory WriterAt/ReaderAt that counts accesses and
// distinct clients across ranks.
type countingFile struct {
	mu       sync.Mutex
	data     []byte
	accesses atomic.Int64
}

func (f *countingFile) WriteAt(p []byte, off int64) (int, error) {
	f.accesses.Add(1)
	f.mu.Lock()
	defer f.mu.Unlock()
	end := off + int64(len(p))
	for int64(len(f.data)) < end {
		f.data = append(f.data, 0)
	}
	copy(f.data[off:end], p)
	return len(p), nil
}

func (f *countingFile) ReadAt(p []byte, off int64) (int, error) {
	f.accesses.Add(1)
	f.mu.Lock()
	defer f.mu.Unlock()
	if off >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func TestWriteAtAllCoalesces(t *testing.T) {
	const n, block = 16, 64
	file := &countingFile{}
	var aggs atomic.Int64
	if err := RunLocal(n, func(c *Comm) error {
		data := bytes.Repeat([]byte{byte(c.Rank() + 1)}, block)
		st, err := c.WriteAtAll(file, int64(c.Rank()*block), data, 2)
		if err != nil {
			return err
		}
		if st.Aggregator {
			aggs.Add(1)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// N/8 clients: 2 aggregators for 16 ranks.
	if aggs.Load() != 2 {
		t.Fatalf("aggregators=%d", aggs.Load())
	}
	// Contiguous extents coalesce into exactly one access per aggregator.
	if file.accesses.Load() != 2 {
		t.Fatalf("file accesses=%d want 2", file.accesses.Load())
	}
	// Content correct.
	if len(file.data) != n*block {
		t.Fatalf("file size %d", len(file.data))
	}
	for r := 0; r < n; r++ {
		for i := 0; i < block; i++ {
			if file.data[r*block+i] != byte(r+1) {
				t.Fatalf("byte %d of rank %d block = %d", i, r, file.data[r*block+i])
			}
		}
	}
}

func TestWriteAtAllNonContiguous(t *testing.T) {
	// Gaps between extents must produce separate accesses, not corruption.
	file := &countingFile{}
	if err := RunLocal(4, func(c *Comm) error {
		data := []byte{byte(c.Rank())}
		_, err := c.WriteAtAll(file, int64(c.Rank()*10), data, 1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if file.accesses.Load() != 4 {
		t.Fatalf("accesses=%d want 4 (no coalescing across gaps)", file.accesses.Load())
	}
	for r := 0; r < 4; r++ {
		if file.data[r*10] != byte(r) {
			t.Fatalf("rank %d byte=%d", r, file.data[r*10])
		}
	}
}

func TestReadAtAll(t *testing.T) {
	const n, block = 8, 32
	file := &countingFile{}
	for r := 0; r < n; r++ {
		file.WriteAt(bytes.Repeat([]byte{byte(r + 10)}, block), int64(r*block))
	}
	file.accesses.Store(0)
	if err := RunLocal(n, func(c *Comm) error {
		got, st, err := c.ReadAtAll(file, int64(c.Rank()*block), block, 2)
		if err != nil {
			return err
		}
		_ = st
		want := bytes.Repeat([]byte{byte(c.Rank() + 10)}, block)
		if !bytes.Equal(got, want) {
			return fmt.Errorf("rank %d got %v...", c.Rank(), got[:4])
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Two spanning reads, one per aggregator.
	if file.accesses.Load() != 2 {
		t.Fatalf("accesses=%d want 2", file.accesses.Load())
	}
}

func TestCollectiveIOValidation(t *testing.T) {
	if err := RunLocal(1, func(c *Comm) error {
		if _, err := c.WriteAtAll(nil, 0, []byte("x"), 0); err == nil {
			return fmt.Errorf("zero aggregators accepted")
		}
		if _, err := c.WriteAtAll(nil, 0, []byte("x"), 1); err == nil {
			return fmt.Errorf("nil writer on aggregator accepted")
		}
		if _, _, err := c.ReadAtAll(nil, 0, -1, 1); err == nil {
			return fmt.Errorf("negative read accepted")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregatorInfoPartition(t *testing.T) {
	for _, tc := range []struct{ size, naggs int }{{16, 2}, {7, 3}, {5, 5}, {4, 9}} {
		seen := map[int]bool{}
		for rank := 0; rank < tc.size; rank++ {
			agg, lo, hi := aggregatorInfo(rank, tc.size, tc.naggs)
			if agg != lo {
				t.Fatalf("size=%d naggs=%d rank=%d: agg %d != lo %d", tc.size, tc.naggs, rank, agg, lo)
			}
			if rank < lo || rank >= hi {
				t.Fatalf("rank %d outside its group [%d,%d)", rank, lo, hi)
			}
			seen[agg] = true
		}
		wantAggs := tc.naggs
		if wantAggs > tc.size {
			wantAggs = tc.size
		}
		if len(seen) != wantAggs {
			t.Fatalf("size=%d naggs=%d: %d aggregators", tc.size, tc.naggs, len(seen))
		}
	}
}

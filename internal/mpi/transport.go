package mpi

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"jets/internal/pmi"
)

// maxMessage bounds a single MPI message; larger payloads indicate stream
// corruption.
const maxMessage = 256 << 20

// transport moves framed messages between ranks. Implementations must allow
// concurrent sends from multiple goroutines.
type transport interface {
	// send delivers data to dst (world rank) in communicator context ctx;
	// it is eager (buffered) and does not wait for a matching receive.
	send(ctx uint32, dst, tag int, data []byte) error
	// close tears the transport down; pending receivers are woken with
	// ErrCommClosed.
	close() error
}

// ---------------------------------------------------------------------------
// local transport: in-process delivery straight into the peer's match queue.
// This models the vendor-native fabric (Blue Gene DCMF) in the Fig. 8
// comparison: no serialization, no kernel crossings.

type localFabric struct {
	queues []*matchQueue
}

// newLocalFabric creates the shared state for an n-process in-memory job.
func newLocalFabric(n int) *localFabric {
	f := &localFabric{queues: make([]*matchQueue, n)}
	for i := range f.queues {
		f.queues[i] = newMatchQueue()
	}
	return f
}

type localTransport struct {
	fabric *localFabric
	rank   int
}

func (t *localTransport) send(ctx uint32, dst, tag int, data []byte) error {
	if dst < 0 || dst >= len(t.fabric.queues) {
		return fmt.Errorf("mpi: send to invalid rank %d", dst)
	}
	// Copy so the sender may reuse its buffer, matching MPI semantics.
	cp := make([]byte, len(data))
	copy(cp, data)
	t.fabric.queues[dst].push(Message{Ctx: ctx, Src: t.rank, Tag: tag, Data: cp})
	return nil
}

func (t *localTransport) close() error {
	t.fabric.queues[t.rank].close()
	return nil
}

// ---------------------------------------------------------------------------
// TCP transport: every rank listens on a loopback socket; addresses are
// exchanged through PMI (put, barrier, lazy get+dial), exactly the wire-up
// the modified MPICH2 performs over ZeptoOS sockets in the paper.

type tcpTransport struct {
	rank int
	size int
	q    *matchQueue
	pc   *pmi.Client

	ln net.Listener

	mu    sync.Mutex
	conns map[int]*tcpConn
	done  bool

	wg sync.WaitGroup
}

type tcpConn struct {
	conn net.Conn
	wmu  sync.Mutex
	w    *bufio.Writer
}

// frame layout: [4 len][4 ctx][4 tag][payload]; the sender rank is
// established by a 4-byte handshake when the connection opens.
func (c *tcpConn) writeFrame(ctx uint32, tag int, data []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(data)))
	binary.BigEndian.PutUint32(hdr[4:8], ctx)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(int32(tag)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.Write(data); err != nil {
		return err
	}
	return c.w.Flush()
}

func pmiAddrKey(rank int) string { return fmt.Sprintf("mpiaddr-%d", rank) }

// newTCPTransport performs the socket wire-up for one rank: listen, publish
// the address via PMI, and barrier so every rank's address is visible.
func newTCPTransport(pc *pmi.Client, q *matchQueue) (*tcpTransport, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("mpi: listen: %w", err)
	}
	t := &tcpTransport{
		rank:  pc.Rank(),
		size:  pc.Size(),
		q:     q,
		pc:    pc,
		ln:    ln,
		conns: make(map[int]*tcpConn),
	}
	go t.acceptLoop()
	if err := pc.Put(pmiAddrKey(t.rank), ln.Addr().String()); err != nil {
		ln.Close()
		return nil, err
	}
	if err := pc.Barrier(); err != nil {
		ln.Close()
		return nil, err
	}
	return t, nil
}

func (t *tcpTransport) acceptLoop() {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *tcpTransport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 64<<10)
	var peer [4]byte
	if _, err := io.ReadFull(r, peer[:]); err != nil {
		return
	}
	src := int(int32(binary.BigEndian.Uint32(peer[:])))
	for {
		var hdr [12]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		ctx := binary.BigEndian.Uint32(hdr[4:8])
		tag := int(int32(binary.BigEndian.Uint32(hdr[8:12])))
		if n > maxMessage {
			return
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(r, data); err != nil {
			return
		}
		t.q.push(Message{Ctx: ctx, Src: src, Tag: tag, Data: data})
	}
}

// dial returns (establishing if needed) the outbound connection to dst.
func (t *tcpTransport) dial(dst int) (*tcpConn, error) {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return nil, ErrCommClosed
	}
	if c, ok := t.conns[dst]; ok {
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()

	addr, err := t.pc.Get(pmiAddrKey(dst))
	if err != nil {
		return nil, fmt.Errorf("mpi: no address for rank %d: %w", dst, err)
	}
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("mpi: dial rank %d: %w", dst, err)
	}
	c := &tcpConn{conn: conn, w: bufio.NewWriterSize(conn, 64<<10)}
	var hs [4]byte
	binary.BigEndian.PutUint32(hs[:], uint32(int32(t.rank)))
	c.wmu.Lock()
	_, err = c.w.Write(hs[:])
	if err == nil {
		err = c.w.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		conn.Close()
		return nil, err
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		conn.Close()
		return nil, ErrCommClosed
	}
	if existing, ok := t.conns[dst]; ok { // lost a dial race; reuse winner
		conn.Close()
		return existing, nil
	}
	t.conns[dst] = c
	return c, nil
}

func (t *tcpTransport) send(ctx uint32, dst, tag int, data []byte) error {
	if dst == t.rank { // self-send short-circuits the socket layer
		cp := make([]byte, len(data))
		copy(cp, data)
		t.q.push(Message{Ctx: ctx, Src: t.rank, Tag: tag, Data: cp})
		return nil
	}
	if dst < 0 || dst >= t.size {
		return fmt.Errorf("mpi: send to invalid rank %d", dst)
	}
	c, err := t.dial(dst)
	if err != nil {
		return err
	}
	return c.writeFrame(ctx, tag, data)
}

func (t *tcpTransport) close() error {
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return nil
	}
	t.done = true
	conns := make([]*tcpConn, 0, len(t.conns))
	for _, c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	t.ln.Close()
	for _, c := range conns {
		c.conn.Close()
	}
	t.q.close()
	return nil
}

package mpi

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// forEachTransport runs the body under both the in-process ("native") and
// TCP/PMI ("sockets") transports so every semantic test covers both paths.
func forEachTransport(t *testing.T, n int, body func(c *Comm) error) {
	t.Helper()
	t.Run("local", func(t *testing.T) {
		if err := RunLocal(n, body); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("tcp", func(t *testing.T) {
		if err := RunTCP(n, body); err != nil {
			t.Fatal(err)
		}
	})
}

func TestRankSize(t *testing.T) {
	forEachTransport(t, 4, func(c *Comm) error {
		if c.Size() != 4 {
			return fmt.Errorf("size=%d", c.Size())
		}
		if c.Rank() < 0 || c.Rank() >= 4 {
			return fmt.Errorf("rank=%d", c.Rank())
		}
		return nil
	})
}

func TestSendRecvRing(t *testing.T) {
	forEachTransport(t, 5, func(c *Comm) error {
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() - 1 + c.Size()) % c.Size()
		msg := []byte(fmt.Sprintf("from-%d", c.Rank()))
		if err := c.Send(next, 7, msg); err != nil {
			return err
		}
		m, err := c.Recv(prev, 7)
		if err != nil {
			return err
		}
		want := fmt.Sprintf("from-%d", prev)
		if string(m.Data) != want {
			return fmt.Errorf("got %q want %q", m.Data, want)
		}
		if m.Src != prev || m.Tag != 7 {
			return fmt.Errorf("src=%d tag=%d", m.Src, m.Tag)
		}
		return nil
	})
}

func TestSelfSend(t *testing.T) {
	forEachTransport(t, 2, func(c *Comm) error {
		if err := c.Send(c.Rank(), 3, []byte("hi")); err != nil {
			return err
		}
		m, err := c.Recv(c.Rank(), 3)
		if err != nil {
			return err
		}
		if string(m.Data) != "hi" {
			return fmt.Errorf("got %q", m.Data)
		}
		return nil
	})
}

func TestTagMatching(t *testing.T) {
	forEachTransport(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			// Send tags out of the order the receiver asks for them.
			if err := c.Send(1, 10, []byte("ten")); err != nil {
				return err
			}
			if err := c.Send(1, 20, []byte("twenty")); err != nil {
				return err
			}
			return nil
		}
		m, err := c.Recv(0, 20)
		if err != nil {
			return err
		}
		if string(m.Data) != "twenty" {
			return fmt.Errorf("tag 20 got %q", m.Data)
		}
		m, err = c.Recv(0, 10)
		if err != nil {
			return err
		}
		if string(m.Data) != "ten" {
			return fmt.Errorf("tag 10 got %q", m.Data)
		}
		return nil
	})
}

func TestFIFOPerSourceTag(t *testing.T) {
	forEachTransport(t, 2, func(c *Comm) error {
		const n = 50
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 1, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			m, err := c.Recv(0, 1)
			if err != nil {
				return err
			}
			if m.Data[0] != byte(i) {
				return fmt.Errorf("message %d arrived as %d", i, m.Data[0])
			}
		}
		return nil
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	forEachTransport(t, 4, func(c *Comm) error {
		if c.Rank() != 0 {
			return c.Send(0, c.Rank(), []byte{byte(c.Rank())})
		}
		seen := map[int]bool{}
		for i := 0; i < 3; i++ {
			m, err := c.Recv(AnySource, AnyTag)
			if err != nil {
				return err
			}
			if m.Src != m.Tag || int(m.Data[0]) != m.Src {
				return fmt.Errorf("inconsistent message %+v", m)
			}
			if seen[m.Src] {
				return fmt.Errorf("duplicate from %d", m.Src)
			}
			seen[m.Src] = true
		}
		return nil
	})
}

func TestNegativeUserTagRejected(t *testing.T) {
	if err := RunLocal(1, func(c *Comm) error {
		if err := c.Send(0, -5, nil); err == nil {
			return fmt.Errorf("negative send tag accepted")
		}
		if _, err := c.Recv(0, -5); err == nil {
			return fmt.Errorf("negative recv tag accepted")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidRanks(t *testing.T) {
	if err := RunLocal(2, func(c *Comm) error {
		if err := c.Send(9, 1, nil); err == nil {
			return fmt.Errorf("send to rank 9 accepted")
		}
		if _, err := c.Recv(9, 1); err == nil {
			return fmt.Errorf("recv from rank 9 accepted")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvExchange(t *testing.T) {
	forEachTransport(t, 4, func(c *Comm) error {
		partner := c.Rank() ^ 1 // pairwise exchange 0<->1, 2<->3
		m, err := c.Sendrecv(partner, 2, []byte{byte(c.Rank())}, partner, 2)
		if err != nil {
			return err
		}
		if int(m.Data[0]) != partner {
			return fmt.Errorf("got %d want %d", m.Data[0], partner)
		}
		return nil
	})
}

func TestBarrier(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			// Counter pattern: all ranks send to 0 before barrier; after the
			// barrier every pre-barrier message must be queued at rank 0.
			if err := RunLocal(n, func(c *Comm) error {
				if err := c.Send(0, 1, nil); err != nil {
					return err
				}
				if err := c.Barrier(); err != nil {
					return err
				}
				if c.Rank() == 0 {
					for i := 0; i < n; i++ {
						if _, err := c.Recv(AnySource, 1); err != nil {
							return err
						}
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBarrierManyRounds(t *testing.T) {
	forEachTransport(t, 6, func(c *Comm) error {
		for i := 0; i < 20; i++ {
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestBcast(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		for root := 0; root < n; root++ {
			n, root := n, root
			t.Run(fmt.Sprintf("n=%d root=%d", n, root), func(t *testing.T) {
				if err := RunLocal(n, func(c *Comm) error {
					var data []byte
					if c.Rank() == root {
						data = []byte("payload")
					}
					got, err := c.Bcast(root, data)
					if err != nil {
						return err
					}
					if string(got) != "payload" {
						return fmt.Errorf("rank %d got %q", c.Rank(), got)
					}
					return nil
				}); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestBcastInvalidRoot(t *testing.T) {
	if err := RunLocal(2, func(c *Comm) error {
		if _, err := c.Bcast(5, nil); err == nil {
			return fmt.Errorf("invalid root accepted")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	forEachTransport(t, 4, func(c *Comm) error {
		parts, err := c.Gather(2, []byte{byte(c.Rank() * 10)})
		if err != nil {
			return err
		}
		if c.Rank() != 2 {
			if parts != nil {
				return fmt.Errorf("non-root got parts")
			}
			return nil
		}
		for i, p := range parts {
			if len(p) != 1 || int(p[0]) != i*10 {
				return fmt.Errorf("parts[%d]=%v", i, p)
			}
		}
		return nil
	})
}

func TestAllgather(t *testing.T) {
	forEachTransport(t, 5, func(c *Comm) error {
		parts, err := c.Allgather([]byte(fmt.Sprintf("r%d", c.Rank())))
		if err != nil {
			return err
		}
		for i, p := range parts {
			if string(p) != fmt.Sprintf("r%d", i) {
				return fmt.Errorf("rank %d parts[%d]=%q", c.Rank(), i, p)
			}
		}
		return nil
	})
}

func TestScatter(t *testing.T) {
	forEachTransport(t, 4, func(c *Comm) error {
		var parts [][]byte
		if c.Rank() == 1 {
			for i := 0; i < c.Size(); i++ {
				parts = append(parts, []byte{byte(i + 100)})
			}
		}
		got, err := c.Scatter(1, parts)
		if err != nil {
			return err
		}
		if len(got) != 1 || int(got[0]) != c.Rank()+100 {
			return fmt.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
}

func TestScatterWrongPartsCount(t *testing.T) {
	if err := RunLocal(2, func(c *Comm) error {
		if c.Rank() == 0 {
			_, err := c.Scatter(0, [][]byte{{1}}) // needs 2 parts
			if err == nil {
				return fmt.Errorf("bad parts count accepted")
			}
			return nil
		}
		// rank 1 would block on recv; don't participate. Use Send to unblock
		// nothing — simply return.
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	forEachTransport(t, 4, func(c *Comm) error {
		parts := make([][]byte, c.Size())
		for j := range parts {
			parts[j] = []byte{byte(c.Rank()), byte(j)}
		}
		got, err := c.Alltoall(parts)
		if err != nil {
			return err
		}
		for i, p := range got {
			if len(p) != 2 || int(p[0]) != i || int(p[1]) != c.Rank() {
				return fmt.Errorf("rank %d got[%d]=%v", c.Rank(), i, p)
			}
		}
		return nil
	})
}

func TestReduceFloat64(t *testing.T) {
	forEachTransport(t, 7, func(c *Comm) error {
		in := []float64{float64(c.Rank()), 1}
		out, err := c.ReduceFloat64(0, OpSum, in)
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			if out != nil {
				return fmt.Errorf("non-root got result")
			}
			return nil
		}
		wantSum := float64(0 + 1 + 2 + 3 + 4 + 5 + 6)
		if math.Abs(out[0]-wantSum) > 1e-9 || math.Abs(out[1]-7) > 1e-9 {
			return fmt.Errorf("got %v", out)
		}
		return nil
	})
}

func TestAllreduceOps(t *testing.T) {
	cases := []struct {
		op   Op
		want float64 // for ranks 1..4 input (rank+1)
	}{
		{OpSum, 10}, {OpMax, 4}, {OpMin, 1}, {OpProd, 24},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.op.String(), func(t *testing.T) {
			if err := RunLocal(4, func(c *Comm) error {
				out, err := c.AllreduceFloat64(tc.op, []float64{float64(c.Rank() + 1)})
				if err != nil {
					return err
				}
				if math.Abs(out[0]-tc.want) > 1e-9 {
					return fmt.Errorf("rank %d: got %v want %v", c.Rank(), out[0], tc.want)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllreduceInt64(t *testing.T) {
	forEachTransport(t, 5, func(c *Comm) error {
		out, err := c.AllreduceInt64(OpMax, []int64{int64(c.Rank()), -int64(c.Rank())})
		if err != nil {
			return err
		}
		if out[0] != 4 || out[1] != 0 {
			return fmt.Errorf("got %v", out)
		}
		return nil
	})
}

func TestReduceLengthMismatch(t *testing.T) {
	if err := RunLocal(2, func(c *Comm) error {
		var in []float64
		if c.Rank() == 0 {
			in = []float64{1, 2}
		} else {
			in = []float64{1}
		}
		_, err := c.ReduceFloat64(0, OpSum, in)
		if c.Rank() == 0 && err == nil {
			return fmt.Errorf("length mismatch accepted")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestProbe(t *testing.T) {
	if err := RunLocal(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 5, []byte("x")); err != nil {
				return err
			}
			return c.Barrier()
		}
		if err := c.Barrier(); err != nil { // ensure message arrived (local: push is synchronous)
			return err
		}
		if !c.Probe(0, 5) {
			return fmt.Errorf("probe missed queued message")
		}
		if c.Probe(0, 6) {
			return fmt.Errorf("probe matched wrong tag")
		}
		m, err := c.Recv(0, 5)
		if err != nil {
			return err
		}
		if string(m.Data) != "x" {
			return fmt.Errorf("got %q", m.Data)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWtimeMonotonic(t *testing.T) {
	if err := RunLocal(1, func(c *Comm) error {
		a := c.Wtime()
		b := c.Wtime()
		if b < a {
			return fmt.Errorf("Wtime went backwards: %v then %v", a, b)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRecvAfterCloseErrors(t *testing.T) {
	fabric := newLocalFabric(1)
	c := &Comm{rank: 0, size: 1, q: fabric.queues[0], tr: &localTransport{fabric: fabric, rank: 0}, owned: true}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recv(0, 1); err != ErrCommClosed {
		t.Fatalf("got %v want ErrCommClosed", err)
	}
	if err := c.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestRunLocalPropagatesError(t *testing.T) {
	err := RunLocal(3, func(c *Comm) error {
		if c.Rank() == 1 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "rank 1") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("got %v", err)
	}
}

func TestRunLocalBadSize(t *testing.T) {
	if err := RunLocal(0, func(c *Comm) error { return nil }); err == nil {
		t.Fatal("want error for size 0")
	}
	if err := RunTCP(-1, func(c *Comm) error { return nil }); err == nil {
		t.Fatal("want error for negative size")
	}
}

func TestLargeMessageTCP(t *testing.T) {
	if err := RunTCP(2, func(c *Comm) error {
		big := bytes.Repeat([]byte{0xAB}, 4<<20)
		if c.Rank() == 0 {
			return c.Send(1, 1, big)
		}
		m, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if !bytes.Equal(m.Data, big) {
			return fmt.Errorf("payload corrupted: len=%d", len(m.Data))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSenderBufferReuse(t *testing.T) {
	// MPI semantics: after Send returns, the sender may scribble on its
	// buffer without corrupting the message.
	if err := RunLocal(2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []byte{1, 2, 3}
			if err := c.Send(1, 1, buf); err != nil {
				return err
			}
			buf[0] = 99
			return nil
		}
		m, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if m.Data[0] != 1 {
			return fmt.Errorf("receiver saw sender's buffer mutation")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRoundTripProperty(t *testing.T) {
	f := func(v []float64) bool {
		got, err := BytesToFloat64s(Float64sToBytes(v))
		if err != nil || len(got) != len(v) {
			return false
		}
		for i := range v {
			if math.IsNaN(v[i]) {
				if !math.IsNaN(got[i]) {
					return false
				}
				continue
			}
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(v []int64) bool {
		got, err := BytesToInt64s(Int64sToBytes(v))
		if err != nil || len(got) != len(v) {
			return false
		}
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := BytesToFloat64s(make([]byte, 7)); err == nil {
		t.Error("7-byte float payload accepted")
	}
	if _, err := BytesToInt64s(make([]byte, 9)); err == nil {
		t.Error("9-byte int payload accepted")
	}
}

func TestPackPartsRoundTripProperty(t *testing.T) {
	f := func(parts [][]byte) bool {
		blob := packParts(parts)
		got, err := unpackParts(blob, len(parts))
		if err != nil || len(got) != len(parts) {
			return false
		}
		for i := range parts {
			if !bytes.Equal(got[i], parts[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnpackPartsErrors(t *testing.T) {
	if _, err := unpackParts(nil, 1); err == nil {
		t.Error("nil blob accepted")
	}
	if _, err := unpackParts(packParts([][]byte{{1}}), 2); err == nil {
		t.Error("wrong count accepted")
	}
	blob := packParts([][]byte{{1, 2, 3}})
	if _, err := unpackParts(blob[:len(blob)-1], 1); err == nil {
		t.Error("truncated blob accepted")
	}
	if _, err := unpackParts(blob[:5], 1); err == nil {
		t.Error("truncated header accepted")
	}
}

// Property: barrier-sleep-barrier pattern (the paper's synthetic benchmark
// app) completes for arbitrary small sizes.
func TestSyntheticBarrierAppProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%6) + 1
		err := RunLocal(n, func(c *Comm) error {
			if err := c.Barrier(); err != nil {
				return err
			}
			// "work"
			if err := c.Barrier(); err != nil {
				return err
			}
			return nil
		})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

package mpi

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Collective I/O in the style of MPI-IO's two-phase optimization. The paper
// motivates MPTC partly through this (§1.2): "for 16-process MPTC tasks
// using MPI-IO, the number of [filesystem] clients would be N/16" — a
// subset of ranks act as aggregators, coalescing the job's extents into
// large contiguous accesses, and only they touch the storage system. §7
// lists experimenting with MPI-IO from JETS-initiated workloads as future
// work; this file implements that layer.

// IOStats reports what a collective operation did at this rank.
type IOStats struct {
	// Aggregator reports whether this rank performed filesystem accesses.
	Aggregator bool
	// Accesses is the number of Write/Read calls issued by this rank.
	Accesses int
	// Bytes moved to or from storage by this rank.
	Bytes int64
}

// aggregatorFor maps a rank to its aggregator: ranks are striped into
// naggs contiguous groups and the first rank of each group aggregates.
func aggregatorInfo(rank, size, naggs int) (agg int, groupLo, groupHi int) {
	if naggs > size {
		naggs = size
	}
	per := size / naggs
	extra := size % naggs
	// Groups: the first `extra` groups have per+1 members.
	lo := 0
	for g := 0; g < naggs; g++ {
		n := per
		if g < extra {
			n++
		}
		if rank < lo+n {
			return lo, lo, lo + n
		}
		lo += n
	}
	return lo - 1, lo - 1, size // unreachable for valid input
}

type extent struct {
	off  int64
	data []byte
}

func packExtent(off int64, data []byte) []byte {
	out := make([]byte, 8+len(data))
	binary.LittleEndian.PutUint64(out, uint64(off))
	copy(out[8:], data)
	return out
}

func unpackExtent(b []byte) (int64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("mpi: truncated extent")
	}
	return int64(binary.LittleEndian.Uint64(b)), b[8:], nil
}

// WriteAtAll collectively writes each rank's data at its file offset using
// naggs aggregator ranks (two-phase I/O): non-aggregators ship their extent
// to their aggregator, which sorts, coalesces adjacent extents, and issues
// the minimal number of WriteAt calls. Only aggregator ranks use w; other
// ranks may pass nil. The call is collective and internally barriered.
func (c *Comm) WriteAtAll(w io.WriterAt, off int64, data []byte, naggs int) (IOStats, error) {
	var st IOStats
	if naggs < 1 {
		return st, fmt.Errorf("mpi: need at least one aggregator, got %d", naggs)
	}
	tag := c.nextCollTag()
	agg, lo, hi := aggregatorInfo(c.rank, c.size, naggs)

	if c.rank != agg {
		if err := c.isend(agg, tag, packExtent(off, data)); err != nil {
			return st, err
		}
		return st, c.Barrier()
	}

	// Aggregator: collect the group's extents (including its own).
	st.Aggregator = true
	extents := []extent{{off: off, data: data}}
	for i := 0; i < hi-lo-1; i++ {
		m, err := c.irecv(AnySource, tag)
		if err != nil {
			return st, err
		}
		eoff, edata, err := unpackExtent(m.Data)
		if err != nil {
			return st, err
		}
		extents = append(extents, extent{off: eoff, data: edata})
	}
	sort.Slice(extents, func(i, j int) bool { return extents[i].off < extents[j].off })

	// Coalesce adjacent extents into single accesses.
	for i := 0; i < len(extents); {
		run := append([]byte(nil), extents[i].data...)
		start := extents[i].off
		j := i + 1
		for j < len(extents) && extents[j].off == start+int64(len(run)) {
			run = append(run, extents[j].data...)
			j++
		}
		if w == nil {
			return st, fmt.Errorf("mpi: aggregator rank %d has no writer", c.rank)
		}
		if _, err := w.WriteAt(run, start); err != nil {
			return st, fmt.Errorf("mpi: collective write at %d: %w", start, err)
		}
		st.Accesses++
		st.Bytes += int64(len(run))
		i = j
	}
	return st, c.Barrier()
}

// ReadAtAll collectively reads n bytes at each rank's offset: aggregators
// read one span covering their group's extents and scatter the pieces. Only
// aggregator ranks use r. The call is collective.
func (c *Comm) ReadAtAll(r io.ReaderAt, off int64, n int, naggs int) ([]byte, IOStats, error) {
	var st IOStats
	if naggs < 1 {
		return nil, st, fmt.Errorf("mpi: need at least one aggregator, got %d", naggs)
	}
	if n < 0 {
		return nil, st, fmt.Errorf("mpi: negative read size %d", n)
	}
	reqTag := c.nextCollTag()
	repTag := c.nextCollTag()
	agg, lo, hi := aggregatorInfo(c.rank, c.size, naggs)

	if c.rank != agg {
		// Request: (offset, length) to the aggregator, then await the data.
		var req [16]byte
		binary.LittleEndian.PutUint64(req[0:8], uint64(off))
		binary.LittleEndian.PutUint64(req[8:16], uint64(int64(n)))
		if err := c.isend(agg, reqTag, req[:]); err != nil {
			return nil, st, err
		}
		m, err := c.irecv(agg, repTag)
		if err != nil {
			return nil, st, err
		}
		return m.Data, st, nil
	}

	st.Aggregator = true
	type request struct {
		src int
		off int64
		n   int
	}
	reqs := []request{{src: c.rank, off: off, n: n}}
	for i := 0; i < hi-lo-1; i++ {
		m, err := c.irecv(AnySource, reqTag)
		if err != nil {
			return nil, st, err
		}
		if len(m.Data) != 16 {
			return nil, st, fmt.Errorf("mpi: corrupt read request from %d", m.Src)
		}
		reqs = append(reqs, request{
			src: m.Src,
			off: int64(binary.LittleEndian.Uint64(m.Data[0:8])),
			n:   int(int64(binary.LittleEndian.Uint64(m.Data[8:16]))),
		})
	}
	// One spanning read covering all requests.
	lo64, hi64 := reqs[0].off, reqs[0].off+int64(reqs[0].n)
	for _, q := range reqs[1:] {
		if q.off < lo64 {
			lo64 = q.off
		}
		if end := q.off + int64(q.n); end > hi64 {
			hi64 = end
		}
	}
	span := make([]byte, hi64-lo64)
	if len(span) > 0 {
		if r == nil {
			return nil, st, fmt.Errorf("mpi: aggregator rank %d has no reader", c.rank)
		}
		if _, err := r.ReadAt(span, lo64); err != nil && err != io.EOF {
			return nil, st, fmt.Errorf("mpi: collective read at %d: %w", lo64, err)
		}
		st.Accesses++
		st.Bytes += int64(len(span))
	}
	var mine []byte
	for _, q := range reqs {
		piece := span[q.off-lo64 : q.off-lo64+int64(q.n)]
		if q.src == c.rank {
			mine = append([]byte(nil), piece...)
			continue
		}
		if err := c.isend(q.src, repTag, piece); err != nil {
			return nil, st, err
		}
	}
	return mine, st, nil
}

package mpi

import (
	"fmt"
	"testing"
	"time"
)

func TestIsendIrecvBasic(t *testing.T) {
	forEachTransport(t, 2, func(c *Comm) error {
		if c.Rank() == 0 {
			req := c.Isend(1, 3, []byte("async"))
			if _, err := req.Wait(); err != nil {
				return err
			}
			return nil
		}
		req := c.Irecv(0, 3)
		m, err := req.Wait()
		if err != nil {
			return err
		}
		if string(m.Data) != "async" || m.Src != 0 {
			return fmt.Errorf("got %+v", m)
		}
		return nil
	})
}

func TestIrecvPostedBeforeSend(t *testing.T) {
	// The defining use of Irecv: post early, compute, send arrives later.
	if err := RunLocal(2, func(c *Comm) error {
		if c.Rank() == 1 {
			req := c.Irecv(0, 1)
			if req.Test() {
				return fmt.Errorf("request complete before any send")
			}
			if err := c.Send(0, 2, nil); err != nil { // signal readiness
				return err
			}
			m, err := req.Wait()
			if err != nil {
				return err
			}
			if string(m.Data) != "late" {
				return fmt.Errorf("got %q", m.Data)
			}
			return nil
		}
		if _, err := c.Recv(1, 2); err != nil {
			return err
		}
		return c.Send(1, 1, []byte("late"))
	}); err != nil {
		t.Fatal(err)
	}
}

func TestIsendBufferReuse(t *testing.T) {
	if err := RunLocal(2, func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []byte{1, 2, 3}
			req := c.Isend(1, 1, buf)
			buf[0] = 99 // immediately scribble
			_, err := req.Wait()
			return err
		}
		m, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if m.Data[0] != 1 {
			return fmt.Errorf("isend did not copy: %v", m.Data)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitAll(t *testing.T) {
	if err := RunLocal(4, func(c *Comm) error {
		if c.Rank() == 0 {
			var reqs []*Request
			for dst := 1; dst < c.Size(); dst++ {
				reqs = append(reqs, c.Isend(dst, 5, []byte{byte(dst)}))
			}
			for dst := 1; dst < c.Size(); dst++ {
				reqs = append(reqs, c.Irecv(dst, 6))
			}
			return WaitAll(reqs...)
		}
		m, err := c.Recv(0, 5)
		if err != nil {
			return err
		}
		return c.Send(0, 6, m.Data)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitAllPropagatesError(t *testing.T) {
	if err := RunLocal(1, func(c *Comm) error {
		bad := c.Isend(7, 1, nil) // invalid rank
		if err := WaitAll(bad); err == nil {
			return fmt.Errorf("invalid send not reported")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitAny(t *testing.T) {
	if err := RunLocal(2, func(c *Comm) error {
		if c.Rank() == 0 {
			time.Sleep(20 * time.Millisecond)
			return c.Send(1, 9, []byte("second"))
		}
		never := c.Irecv(0, 100) // no one sends tag 100
		soon := c.Irecv(0, 9)
		i := WaitAny(never, soon)
		if i != 1 {
			return fmt.Errorf("WaitAny picked %d", i)
		}
		// Unblock the never request by closing; RunLocal closes the comm on
		// return, which errors the pending Irecv goroutine harmlessly.
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if WaitAny() != -1 {
		t.Fatal("empty WaitAny")
	}
}

// Package dht is a distributed hash table layered over an MPI communicator,
// the data-passing scheme the paper proposes evaluating for MPTC dataflows
// (§7, citing Wozniak et al.'s reliable MPI data structures): instead of
// passing datasets between tasks through the shared filesystem, ranks
// publish values into a table partitioned across the job by key hash.
//
// Each rank runs a service goroutine answering requests for the keys it
// owns while the application thread issues its own operations; request and
// reply traffic runs on a private duplicated communicator so it never
// collides with application messages.
package dht

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"jets/internal/mpi"
)

// ErrNotFound is returned by Get for absent keys.
var ErrNotFound = errors.New("dht: key not found")

// ErrClosed is returned after Close.
var ErrClosed = errors.New("dht: closed")

// op codes on the wire.
const (
	opPut = iota
	opGet
	opDelete
	opStop
	opOK
	opMissing
)

const (
	reqTag = 1 << 20 // service request tag
	repTag = 1 << 21 // reply tag base; replies use repTag+seq
	maxSeq = 1 << 19
)

// Table is one rank's handle to the distributed table.
type Table struct {
	comm *mpi.Comm

	mu    sync.Mutex
	local map[string][]byte

	seq    atomic.Int64
	closed atomic.Bool
	done   chan struct{}
}

// New creates the table collectively: every rank of comm must call it. The
// table duplicates the communicator for its internal traffic.
func New(comm *mpi.Comm) (*Table, error) {
	priv, err := comm.Dup()
	if err != nil {
		return nil, fmt.Errorf("dht: dup: %w", err)
	}
	t := &Table{comm: priv, local: make(map[string][]byte), done: make(chan struct{})}
	go t.serve()
	return t, nil
}

// Owner returns the rank owning a key.
func (t *Table) Owner(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(t.comm.Size()))
}

// message layout: [1 op][8 seq][2 klen][key][value]
func encodeReq(op byte, seq int64, key string, value []byte) []byte {
	out := make([]byte, 0, 11+len(key)+len(value))
	out = append(out, op)
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], uint64(seq))
	out = append(out, b8[:]...)
	var b2 [2]byte
	binary.LittleEndian.PutUint16(b2[:], uint16(len(key)))
	out = append(out, b2[:]...)
	out = append(out, key...)
	out = append(out, value...)
	return out
}

func decodeReq(b []byte) (op byte, seq int64, key string, value []byte, err error) {
	if len(b) < 11 {
		return 0, 0, "", nil, fmt.Errorf("dht: truncated request")
	}
	op = b[0]
	seq = int64(binary.LittleEndian.Uint64(b[1:9]))
	klen := int(binary.LittleEndian.Uint16(b[9:11]))
	if len(b) < 11+klen {
		return 0, 0, "", nil, fmt.Errorf("dht: truncated key")
	}
	key = string(b[11 : 11+klen])
	value = b[11+klen:]
	return op, seq, key, value, nil
}

// serve answers requests for locally owned keys until a stop message.
func (t *Table) serve() {
	defer close(t.done)
	for {
		m, err := t.comm.Recv(mpi.AnySource, reqTag)
		if err != nil {
			return // communicator closed
		}
		op, seq, key, value, err := decodeReq(m.Data)
		if err != nil {
			continue
		}
		replyTo := m.Src
		reply := func(status byte, data []byte) {
			t.comm.Send(replyTo, repTag+int(seq%maxSeq), append([]byte{status}, data...))
		}
		switch op {
		case opStop:
			return
		case opPut:
			t.mu.Lock()
			t.local[key] = append([]byte(nil), value...)
			t.mu.Unlock()
			reply(opOK, nil)
		case opGet:
			t.mu.Lock()
			v, ok := t.local[key]
			cp := append([]byte(nil), v...)
			t.mu.Unlock()
			if ok {
				reply(opOK, cp)
			} else {
				reply(opMissing, nil)
			}
		case opDelete:
			t.mu.Lock()
			_, ok := t.local[key]
			delete(t.local, key)
			t.mu.Unlock()
			if ok {
				reply(opOK, nil)
			} else {
				reply(opMissing, nil)
			}
		}
	}
}

// call performs one remote operation and waits for the reply.
func (t *Table) call(op byte, key string, value []byte) (byte, []byte, error) {
	if t.closed.Load() {
		return 0, nil, ErrClosed
	}
	if len(key) > 1<<16-1 {
		return 0, nil, fmt.Errorf("dht: key too long (%d bytes)", len(key))
	}
	owner := t.Owner(key)
	seq := t.seq.Add(1)
	if err := t.comm.Send(owner, reqTag, encodeReq(op, seq, key, value)); err != nil {
		return 0, nil, err
	}
	m, err := t.comm.Recv(owner, repTag+int(seq%maxSeq))
	if err != nil {
		return 0, nil, err
	}
	if len(m.Data) < 1 {
		return 0, nil, fmt.Errorf("dht: empty reply")
	}
	return m.Data[0], m.Data[1:], nil
}

// Put stores key=value at its owner rank.
func (t *Table) Put(key string, value []byte) error {
	status, _, err := t.call(opPut, key, value)
	if err != nil {
		return err
	}
	if status != opOK {
		return fmt.Errorf("dht: put rejected (status %d)", status)
	}
	return nil
}

// Get fetches a key, wherever it lives.
func (t *Table) Get(key string) ([]byte, error) {
	status, data, err := t.call(opGet, key, nil)
	if err != nil {
		return nil, err
	}
	if status == opMissing {
		return nil, ErrNotFound
	}
	return data, nil
}

// Delete removes a key; deleting an absent key returns ErrNotFound.
func (t *Table) Delete(key string) error {
	status, _, err := t.call(opDelete, key, nil)
	if err != nil {
		return err
	}
	if status == opMissing {
		return ErrNotFound
	}
	return nil
}

// LocalLen reports the number of keys this rank owns.
func (t *Table) LocalLen() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.local)
}

// Close shuts this rank's table down. It is collective in effect: every
// rank should call it; each rank stops only its own service (by sending
// itself a stop message), so in-flight remote operations from other ranks
// complete first.
func (t *Table) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	// Stop our own service loop.
	if err := t.comm.Send(t.comm.Rank(), reqTag, encodeReq(opStop, 0, "", nil)); err != nil {
		return err
	}
	<-t.done
	return t.comm.Close()
}

package dht

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"jets/internal/mpi"
)

// withTable runs fn on every rank of an n-process job with a table created
// and torn down collectively.
func withTable(t *testing.T, n int, fn func(c *mpi.Comm, tab *Table) error) {
	t.Helper()
	err := mpi.RunLocal(n, func(c *mpi.Comm) error {
		tab, err := New(c)
		if err != nil {
			return err
		}
		if err := fn(c, tab); err != nil {
			return err
		}
		// Quiesce before shutdown so no remote operation is outstanding.
		if err := c.Barrier(); err != nil {
			return err
		}
		return tab.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutGetAcrossRanks(t *testing.T) {
	withTable(t, 4, func(c *mpi.Comm, tab *Table) error {
		key := fmt.Sprintf("key-from-%d", c.Rank())
		val := []byte(fmt.Sprintf("value-%d", c.Rank()))
		if err := tab.Put(key, val); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		// Every rank reads every other rank's key.
		for r := 0; r < c.Size(); r++ {
			got, err := tab.Get(fmt.Sprintf("key-from-%d", r))
			if err != nil {
				return fmt.Errorf("rank %d get key-from-%d: %w", c.Rank(), r, err)
			}
			want := fmt.Sprintf("value-%d", r)
			if string(got) != want {
				return fmt.Errorf("got %q want %q", got, want)
			}
		}
		return nil
	})
}

func TestGetMissing(t *testing.T) {
	withTable(t, 2, func(c *mpi.Comm, tab *Table) error {
		if _, err := tab.Get("nope"); !errors.Is(err, ErrNotFound) {
			return fmt.Errorf("got %v want ErrNotFound", err)
		}
		return nil
	})
}

func TestDelete(t *testing.T) {
	withTable(t, 3, func(c *mpi.Comm, tab *Table) error {
		if c.Rank() == 0 {
			if err := tab.Put("k", []byte("v")); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 1 {
			if err := tab.Delete("k"); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if _, err := tab.Get("k"); !errors.Is(err, ErrNotFound) {
			return fmt.Errorf("key survived delete: %v", err)
		}
		if err := tab.Delete("k"); !errors.Is(err, ErrNotFound) {
			return fmt.Errorf("double delete: %v", err)
		}
		return nil
	})
}

func TestOverwrite(t *testing.T) {
	withTable(t, 2, func(c *mpi.Comm, tab *Table) error {
		if c.Rank() == 0 {
			if err := tab.Put("k", []byte("one")); err != nil {
				return err
			}
			if err := tab.Put("k", []byte("two")); err != nil {
				return err
			}
			got, err := tab.Get("k")
			if err != nil || string(got) != "two" {
				return fmt.Errorf("got %q err %v", got, err)
			}
		}
		return nil
	})
}

func TestOwnerConsistentAndBalanced(t *testing.T) {
	withTable(t, 4, func(c *mpi.Comm, tab *Table) error {
		counts := make([]int, c.Size())
		for i := 0; i < 1000; i++ {
			counts[tab.Owner(fmt.Sprintf("key%d", i))]++
		}
		for r, n := range counts {
			if n < 100 { // perfectly balanced would be 250
				return fmt.Errorf("rank %d owns only %d/1000 keys", r, n)
			}
		}
		return nil
	})
}

func TestLocalLenMatchesOwnership(t *testing.T) {
	withTable(t, 4, func(c *mpi.Comm, tab *Table) error {
		if c.Rank() == 0 {
			for i := 0; i < 100; i++ {
				if err := tab.Put(fmt.Sprintf("k%d", i), []byte{1}); err != nil {
					return err
				}
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		// Sum of local lengths equals total keys.
		total, err := c.AllreduceInt64(mpi.OpSum, []int64{int64(tab.LocalLen())})
		if err != nil {
			return err
		}
		if total[0] != 100 {
			return fmt.Errorf("total keys %d", total[0])
		}
		return nil
	})
}

func TestConcurrentMixedOps(t *testing.T) {
	withTable(t, 4, func(c *mpi.Comm, tab *Table) error {
		const perRank = 50
		var wg sync.WaitGroup
		errs := make(chan error, perRank)
		for i := 0; i < perRank; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				key := fmt.Sprintf("r%d-i%d", c.Rank(), i)
				val := bytes.Repeat([]byte{byte(i)}, 64)
				if err := tab.Put(key, val); err != nil {
					errs <- err
					return
				}
				got, err := tab.Get(key)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, val) {
					errs <- fmt.Errorf("corrupt value for %s", key)
				}
			}(i)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			return err
		}
		return nil
	})
}

func TestTableIsolatedFromAppTraffic(t *testing.T) {
	// Application point-to-point traffic with arbitrary tags must not be
	// swallowed by the table's service loop.
	withTable(t, 2, func(c *mpi.Comm, tab *Table) error {
		if err := tab.Put("x", []byte("y")); err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := c.Send(1, 7, []byte("app")); err != nil {
				return err
			}
			_, err := tab.Get("x")
			return err
		}
		m, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if string(m.Data) != "app" {
			return fmt.Errorf("app traffic corrupted: %q", m.Data)
		}
		return nil
	})
}

func TestOpsAfterCloseFail(t *testing.T) {
	err := mpi.RunLocal(2, func(c *mpi.Comm) error {
		tab, err := New(c)
		if err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if err := tab.Close(); err != nil {
			return err
		}
		if err := tab.Put("k", nil); !errors.Is(err, ErrClosed) {
			return fmt.Errorf("put after close: %v", err)
		}
		if err := tab.Close(); err != nil { // idempotent
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeReq(t *testing.T) {
	b := encodeReq(opPut, 42, "key", []byte("value"))
	op, seq, key, val, err := decodeReq(b)
	if err != nil || op != opPut || seq != 42 || key != "key" || string(val) != "value" {
		t.Fatalf("decoded op=%d seq=%d key=%q val=%q err=%v", op, seq, key, val, err)
	}
	if _, _, _, _, err := decodeReq([]byte{1, 2}); err == nil {
		t.Error("truncated request accepted")
	}
	if _, _, _, _, err := decodeReq(encodeReq(opPut, 1, "abc", nil)[:12]); err == nil {
		t.Error("truncated key accepted")
	}
}

func TestLongKeyRejected(t *testing.T) {
	withTable(t, 1, func(c *mpi.Comm, tab *Table) error {
		if err := tab.Put(string(make([]byte, 1<<17)), nil); err == nil {
			return fmt.Errorf("oversized key accepted")
		}
		return nil
	})
}

// Package coasters reimplements the Coasters service layer JETS integrates
// with (§4.1, Fig. 3): a persistent service that provisions pilot-job
// workers in blocks through an underlying provider, accepts task
// submissions over an RPC connection (the Swift execution layer is one
// client), schedules them onto the worker pool via the JETS dispatcher, and
// carries file staging over the same connection, removing the need for a
// separate data transfer mechanism.
//
// The "multiple-job-size spectrum" block allocator of the paper's future
// work (§7) is implemented as an optional policy: instead of one monolithic
// block, worker capacity is requested as a spectrum of block sizes so
// partial allocations become usable earlier under unknown queue conditions.
package coasters

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"jets/internal/dispatch"
	"jets/internal/hydra"
	"jets/internal/obs"
	"jets/internal/proto"
	"jets/internal/worker"
)

// Provider boots pilot-job workers that connect to a dispatcher — the
// underlying execution provider (local, ssh, PBS, Cobalt in the paper).
type Provider interface {
	// Boot starts n workers pointed at the dispatcher address and returns a
	// releasable block.
	Boot(ctx context.Context, n int, dispatcherAddr string) (Block, error)
}

// Block is one pilot-job allocation.
type Block interface {
	ID() string
	Size() int
	// Release tears the block's workers down.
	Release()
}

// LocalProvider boots in-process workers backed by a shared Runner, the
// single-machine analogue of a cluster allocation.
type LocalProvider struct {
	Runner hydra.Runner
	Cores  int
	// JSONWire keeps booted workers on the v1 JSON wire format instead of
	// negotiating the binary fast path (old-peer interop testing).
	JSONWire bool
	// CacheDir, when set, gives every booted worker a private node-local
	// cache subdirectory beneath it, enabling stage frames.
	CacheDir string

	mu  sync.Mutex
	seq int
}

type localBlock struct {
	id      string
	size    int
	cancel  context.CancelFunc
	wg      *sync.WaitGroup
	workers []*worker.Worker
}

func (b *localBlock) ID() string { return b.id }
func (b *localBlock) Size() int  { return b.size }
func (b *localBlock) Release() {
	b.cancel()
	for _, w := range b.workers {
		w.Kill()
	}
	b.wg.Wait()
}

// Boot implements Provider.
func (p *LocalProvider) Boot(ctx context.Context, n int, addr string) (Block, error) {
	if n <= 0 {
		return nil, fmt.Errorf("coasters: block size %d", n)
	}
	p.mu.Lock()
	p.seq++
	id := fmt.Sprintf("block-%d", p.seq)
	p.mu.Unlock()
	bctx, cancel := context.WithCancel(context.Background())
	blk := &localBlock{id: id, size: n, cancel: cancel, wg: &sync.WaitGroup{}}
	cores := p.Cores
	if cores <= 0 {
		cores = 1
	}
	for i := 0; i < n; i++ {
		var cacheDir string
		if p.CacheDir != "" {
			cacheDir = filepath.Join(p.CacheDir, fmt.Sprintf("%s-w%d", id, i))
			if err := os.MkdirAll(cacheDir, 0o755); err != nil {
				cancel()
				return nil, err
			}
		}
		w, err := worker.New(worker.Config{
			ID:                fmt.Sprintf("%s/w%d", id, i),
			Cores:             cores,
			DispatcherAddr:    addr,
			Runner:            p.Runner,
			HeartbeatInterval: 250 * time.Millisecond,
			JSONOnly:          p.JSONWire,
			CacheDir:          cacheDir,
		})
		if err != nil {
			cancel()
			return nil, err
		}
		blk.workers = append(blk.workers, w)
		blk.wg.Add(1)
		go func(w *worker.Worker) {
			defer blk.wg.Done()
			w.Run(bctx)
		}(w)
	}
	return blk, nil
}

// SpectrumSizes decomposes a worker demand into the §7 spectrum of block
// sizes: halving blocks down to a minimum, so some capacity arrives even if
// large blocks queue. The sizes sum to at least n.
func SpectrumSizes(n, min int) []int {
	if n <= 0 {
		return nil
	}
	if min < 1 {
		min = 1
	}
	var out []int
	remaining := n
	size := n / 2
	for remaining > 0 {
		if size < min {
			size = min
		}
		if size > remaining {
			size = remaining
		}
		out = append(out, size)
		remaining -= size
		size /= 2
	}
	return out
}

// Config parameterizes the service.
type Config struct {
	Provider Provider
	// Spectrum enables the multi-size block allocator.
	Spectrum bool
	// SpectrumMin is the smallest spectrum block; default 1.
	SpectrumMin int
	// Dispatch configures the embedded JETS dispatcher.
	Dispatch dispatch.Config
	// BootTimeout bounds waiting for requested workers; default 30s.
	BootTimeout time.Duration
	// NoRawRelay disables zero-copy passthrough on data-plane subscriber
	// connections: every relayed frame is decoded and re-encoded through
	// the typed path instead of forwarded verbatim. Interop/testing knob —
	// delivered payloads are identical either way.
	NoRawRelay bool
}

// Service is a running CoasterService.
type Service struct {
	cfg Config
	d   *dispatch.Dispatcher

	mu        sync.Mutex
	blocks    []Block
	closed    bool
	listeners []net.Listener

	staged map[string][]byte // staging area (service-side file store)

	subMu      sync.RWMutex
	subs       map[*subscriber]struct{} // data-plane output subscribers
	droppedOut atomic.Int64

	stagedFiles atomic.Int64 // files accepted into the staging store
	stagedBytes atomic.Int64 // payload bytes accepted into the staging store
}

// NewService starts the embedded dispatcher and returns the service.
func NewService(cfg Config) (*Service, error) {
	if cfg.Provider == nil {
		return nil, errors.New("coasters: provider required")
	}
	if cfg.BootTimeout <= 0 {
		cfg.BootTimeout = 30 * time.Second
	}
	s := &Service{staged: map[string][]byte{}, subs: map[*subscriber]struct{}{}}
	// Chain the raw output hook: the service's data-plane relay runs first,
	// then whatever the embedder wired (both borrow the frame).
	userHook := cfg.Dispatch.OnOutputFrame
	cfg.Dispatch.OnOutputFrame = func(f *proto.Frame) {
		s.relayOutput(f)
		if userHook != nil {
			userHook(f)
		}
	}
	d := dispatch.New(cfg.Dispatch)
	if _, err := d.Start(); err != nil {
		return nil, err
	}
	s.cfg = cfg
	s.d = d
	if cfg.Dispatch.Obs != nil {
		s.registerObs(cfg.Dispatch.Obs)
	}
	return s, nil
}

// registerObs exports the service's data-plane and staging state through the
// same registry the embedded dispatcher uses. All series are sampled at
// scrape time from state the service already maintains.
func (s *Service) registerObs(reg *obs.Registry) {
	reg.CounterFunc("jets_dataplane_dropped_outputs_total",
		"output frames dropped because a data-plane subscriber queue was full", s.droppedOut.Load)
	reg.CounterFunc("jets_stage_files_total",
		"files accepted into the service staging store", s.stagedFiles.Load)
	reg.CounterFunc("jets_stage_bytes_total",
		"payload bytes accepted into the service staging store", s.stagedBytes.Load)
	reg.GaugeFunc("jets_dataplane_subscribers",
		"connected data-plane output subscribers", func() float64 {
			s.subMu.RLock()
			defer s.subMu.RUnlock()
			return float64(len(s.subs))
		})
	reg.GaugeFunc("jets_dataplane_queue_depth",
		"relayed output frames buffered across all subscriber queues", func() float64 {
			s.subMu.RLock()
			defer s.subMu.RUnlock()
			n := 0
			for sub := range s.subs {
				n += len(sub.q)
			}
			return float64(n)
		})
}

// Dispatcher exposes the embedded JETS dispatcher.
func (s *Service) Dispatcher() *dispatch.Dispatcher { return s.d }

// Workers reports current pool size.
func (s *Service) Workers() int { return s.d.Workers() }

// EnsureWorkers grows the pool to at least n workers, allocating one block
// or a spectrum of blocks, and waits until they register.
func (s *Service) EnsureWorkers(ctx context.Context, n int) error {
	have := s.d.Workers()
	if have >= n {
		return nil
	}
	need := n - have
	sizes := []int{need}
	if s.cfg.Spectrum {
		sizes = SpectrumSizes(need, s.cfg.SpectrumMin)
	}
	for _, size := range sizes {
		blk, err := s.cfg.Provider.Boot(ctx, size, s.d.Addr())
		if err != nil {
			return fmt.Errorf("coasters: boot block of %d: %w", size, err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			blk.Release()
			return errors.New("coasters: service closed")
		}
		s.blocks = append(s.blocks, blk)
		s.mu.Unlock()
	}
	deadline := time.Now().Add(s.cfg.BootTimeout)
	for s.d.Workers() < n {
		if time.Now().After(deadline) {
			return fmt.Errorf("coasters: only %d/%d workers registered", s.d.Workers(), n)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
	return nil
}

// Submit schedules one job, growing the pool if an MPI job needs more
// workers than exist (the paper's MPI-aware Coasters allocation: "the
// CoasterService waits for the appropriate number of available worker nodes
// before launching the mpiexec control mechanism").
func (s *Service) Submit(ctx context.Context, job dispatch.Job) (*dispatch.Handle, error) {
	if job.Type == dispatch.MPI && job.Spec.NProcs > s.d.Workers() {
		if err := s.EnsureWorkers(ctx, job.Spec.NProcs); err != nil {
			return nil, err
		}
	}
	return s.d.Submit(job)
}

// Put stores a staged file in the service store (data transfer over the
// client channel).
func (s *Service) Put(name string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.staged[name] = append([]byte(nil), data...)
	s.stagedFiles.Add(1)
	s.stagedBytes.Add(int64(len(data)))
	// Forward to worker-local caches as well.
	go s.d.StageFile(name, data)
}

// Get retrieves a staged file.
func (s *Service) Get(name string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.staged[name]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), data...), true
}

// Blocks reports the allocated block count.
func (s *Service) Blocks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blocks)
}

// Close releases every block and stops the dispatcher.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	blocks := s.blocks
	s.blocks = nil
	listeners := s.listeners
	s.listeners = nil
	s.mu.Unlock()
	for _, ln := range listeners {
		ln.Close()
	}
	s.d.Close()
	for _, b := range blocks {
		b.Release()
	}
}

package coasters

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"jets/internal/dispatch"
	"jets/internal/hydra"
	"jets/internal/mpi"
)

func newTestService(t *testing.T, spectrum bool) (*Service, *hydra.FuncRunner) {
	t.Helper()
	runner := hydra.NewFuncRunner()
	svc, err := NewService(Config{
		Provider: &LocalProvider{Runner: runner, Cores: 4},
		Spectrum: spectrum,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc, runner
}

func TestSpectrumSizes(t *testing.T) {
	cases := []struct {
		n, min int
		want   []int
	}{
		{8, 1, []int{4, 2, 1, 1}},
		{1, 1, []int{1}},
		{0, 1, nil},
		{7, 2, []int{3, 2, 2}},
	}
	for _, tc := range cases {
		got := SpectrumSizes(tc.n, tc.min)
		if len(got) != len(tc.want) {
			t.Errorf("SpectrumSizes(%d,%d)=%v want %v", tc.n, tc.min, got, tc.want)
			continue
		}
		for i := range tc.want {
			if got[i] != tc.want[i] {
				t.Errorf("SpectrumSizes(%d,%d)=%v want %v", tc.n, tc.min, got, tc.want)
				break
			}
		}
	}
}

// Property: spectrum blocks cover the demand exactly and never exceed it by
// more than min-1, with sizes nonincreasing.
func TestSpectrumSizesProperty(t *testing.T) {
	f := func(nRaw, minRaw uint8) bool {
		n := int(nRaw)%128 + 1
		min := int(minRaw)%8 + 1
		sizes := SpectrumSizes(n, min)
		sum := 0
		prev := 1 << 30
		for _, s := range sizes {
			if s <= 0 || s > prev {
				return false
			}
			prev = s
			sum += s
		}
		return sum == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEnsureWorkersSingleBlock(t *testing.T) {
	svc, _ := newTestService(t, false)
	if err := svc.EnsureWorkers(context.Background(), 6); err != nil {
		t.Fatal(err)
	}
	if svc.Workers() != 6 || svc.Blocks() != 1 {
		t.Fatalf("workers=%d blocks=%d", svc.Workers(), svc.Blocks())
	}
	// Idempotent: enough workers, no new blocks.
	if err := svc.EnsureWorkers(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	if svc.Blocks() != 1 {
		t.Fatalf("blocks=%d", svc.Blocks())
	}
}

func TestEnsureWorkersSpectrum(t *testing.T) {
	svc, _ := newTestService(t, true)
	if err := svc.EnsureWorkers(context.Background(), 8); err != nil {
		t.Fatal(err)
	}
	if svc.Workers() != 8 {
		t.Fatalf("workers=%d", svc.Workers())
	}
	if svc.Blocks() < 3 { // 4+2+1+1
		t.Fatalf("blocks=%d; spectrum should allocate several", svc.Blocks())
	}
}

func TestSubmitGrowsPoolForMPI(t *testing.T) {
	svc, runner := newTestService(t, false)
	runner.Register("allsum", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		comm, err := mpi.InitEnvFrom(env)
		if err != nil {
			return 1
		}
		defer comm.Close()
		out, err := comm.AllreduceInt64(mpi.OpSum, []int64{1})
		if err != nil || int(out[0]) != comm.Size() {
			return 1
		}
		return 0
	})
	// No workers yet; the MPI-aware allocation must boot 5.
	h, err := svc.Submit(context.Background(), dispatch.Job{
		Spec: hydra.JobSpec{JobID: "m", NProcs: 5, Cmd: "allsum"},
		Type: dispatch.MPI,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res := h.Wait(); res.Failed {
		t.Fatalf("job failed: %+v", res)
	}
	if svc.Workers() < 5 {
		t.Fatalf("workers=%d", svc.Workers())
	}
}

func TestStaging(t *testing.T) {
	svc, _ := newTestService(t, false)
	svc.Put("params.cfg", []byte("temperature 300"))
	data, ok := svc.Get("params.cfg")
	if !ok || string(data) != "temperature 300" {
		t.Fatalf("got %q ok=%v", data, ok)
	}
	if _, ok := svc.Get("missing"); ok {
		t.Fatal("missing file found")
	}
	// Returned copy must not alias the store.
	data[0] = 'X'
	again, _ := svc.Get("params.cfg")
	if string(again) != "temperature 300" {
		t.Fatal("staging store aliased")
	}
}

func TestRPCRoundTrip(t *testing.T) {
	svc, runner := newTestService(t, false)
	var mu sync.Mutex
	ran := 0
	runner.Register("job.sh", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		mu.Lock()
		ran++
		mu.Unlock()
		return 0
	})
	if err := svc.EnsureWorkers(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	addr, err := svc.Serve("")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := DialClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if n, err := cl.Workers(ctx); err != nil || n != 2 {
		t.Fatalf("workers=%d err=%v", n, err)
	}
	// Concurrent submissions over one connection.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := cl.Submit(ctx, WireJob{JobID: fmt.Sprintf("rpc%d", i), NProcs: 1, Cmd: "job.sh"})
			if err != nil {
				errs <- err
				return
			}
			if res == nil || res.Failed {
				errs <- fmt.Errorf("job %d failed: %+v", i, res)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if ran != 8 {
		t.Fatalf("ran=%d", ran)
	}
}

func TestRPCStagingAndEnsure(t *testing.T) {
	svc, _ := newTestService(t, false)
	addr, err := svc.Serve("")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := DialClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	payload := bytes.Repeat([]byte{7}, 1<<16)
	if err := cl.Put(ctx, "big.bin", payload); err != nil {
		t.Fatal(err)
	}
	got, found, err := cl.Get(ctx, "big.bin")
	if err != nil || !found || !bytes.Equal(got, payload) {
		t.Fatalf("get: found=%v err=%v len=%d", found, err, len(got))
	}
	if _, found, _ := cl.Get(ctx, "nope"); found {
		t.Fatal("found missing file")
	}
	n, err := cl.Ensure(ctx, 3)
	if err != nil || n != 3 {
		t.Fatalf("ensure: n=%d err=%v", n, err)
	}
}

func TestRPCUnknownOp(t *testing.T) {
	svc, _ := newTestService(t, false)
	addr, _ := svc.Serve("")
	cl, err := DialClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.call(context.Background(), rpcRequest{Op: "bogus"}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestBlockRelease(t *testing.T) {
	svc, _ := newTestService(t, false)
	if err := svc.EnsureWorkers(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	d := svc.Dispatcher()
	if d.Workers() != 4 {
		t.Fatalf("workers=%d", d.Workers())
	}
	svc.Close()
	deadline := time.Now().Add(5 * time.Second)
	for d.Workers() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("workers not released: %d", d.Workers())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestProviderValidation(t *testing.T) {
	if _, err := NewService(Config{}); err == nil {
		t.Fatal("service without provider accepted")
	}
	p := &LocalProvider{Runner: hydra.NewFuncRunner()}
	if _, err := p.Boot(context.Background(), 0, "127.0.0.1:1"); err == nil {
		t.Fatal("zero block accepted")
	}
}

// TestShardedDispatchThroughService: the service plumbs Config.Dispatch
// straight through, so a sharded dispatcher (workers hash-keyed to shards —
// LocalProvider workers carry no coordinates) serves a mixed batch correctly.
func TestShardedDispatchThroughService(t *testing.T) {
	runner := hydra.NewFuncRunner()
	svc, err := NewService(Config{
		Provider: &LocalProvider{Runner: runner, Cores: 4},
		Dispatch: dispatch.Config{Shards: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	if got := svc.Dispatcher().Shards(); got != 4 {
		t.Fatalf("shards=%d want 4", got)
	}
	if err := svc.EnsureWorkers(context.Background(), 8); err != nil {
		t.Fatal(err)
	}
	runner.Register("ok", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		return 0
	})
	var handles []*dispatch.Handle
	for i := 0; i < 24; i++ {
		h, err := svc.Submit(context.Background(), dispatch.Job{
			Spec: hydra.JobSpec{JobID: fmt.Sprintf("s%d", i), NProcs: 1, Cmd: "ok"},
			Type: dispatch.Sequential,
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	// One cross-shard MPI job wider than any single shard's likely pool.
	wide, err := svc.Submit(context.Background(), dispatch.Job{
		Spec: hydra.JobSpec{JobID: "wide", NProcs: 8, Cmd: "ok"},
		Type: dispatch.MPI,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range handles {
		if res := h.Wait(); res.Failed {
			t.Fatalf("job %s failed: %s", res.JobID, res.Err)
		}
	}
	if res := wide.Wait(); res.Failed {
		t.Fatalf("wide job failed: %s", res.Err)
	}
}

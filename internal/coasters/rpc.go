package coasters

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"jets/internal/dispatch"
	"jets/internal/hydra"
)

// The client RPC: newline-delimited JSON over TCP (step 4 of Fig. 3 — task
// submission and data movement share one socket). Requests are handled
// concurrently and responses matched by ID, so one connection carries many
// outstanding tasks, as the Swift execution layer requires.

type rpcRequest struct {
	ID   uint64   `json:"id"`
	Op   string   `json:"op"`
	Job  *WireJob `json:"job,omitempty"`
	Name string   `json:"name,omitempty"`
	Data []byte   `json:"data,omitempty"`
	N    int      `json:"n,omitempty"`
}

type rpcResponse struct {
	ID     uint64              `json:"id"`
	Err    string              `json:"err,omitempty"`
	Result *dispatch.JobResult `json:"result,omitempty"`
	Data   []byte              `json:"data,omitempty"`
	Found  bool                `json:"found,omitempty"`
	N      int                 `json:"n,omitempty"`
}

// WireJob is the serializable job submission.
type WireJob struct {
	JobID    string   `json:"job_id"`
	NProcs   int      `json:"nprocs"`
	Cmd      string   `json:"cmd"`
	Args     []string `json:"args,omitempty"`
	Env      []string `json:"env,omitempty"`
	MPI      bool     `json:"mpi"`
	Priority int      `json:"priority,omitempty"`
}

func (w *WireJob) toJob() dispatch.Job {
	typ := dispatch.Sequential
	if w.MPI {
		typ = dispatch.MPI
	}
	return dispatch.Job{
		Spec: hydra.JobSpec{
			JobID:  w.JobID,
			NProcs: w.NProcs,
			Cmd:    w.Cmd,
			Args:   w.Args,
			Env:    w.Env,
		},
		Type:     typ,
		Priority: w.Priority,
	}
}

// Serve starts the client RPC listener; returns its address.
func (s *Service) Serve(addr string) (string, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go s.serveClient(conn)
		}
	}()
	s.mu.Lock()
	s.listeners = append(s.listeners, ln)
	s.mu.Unlock()
	return ln.Addr().String(), nil
}

func (s *Service) serveClient(conn net.Conn) {
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	var wmu sync.Mutex
	enc := json.NewEncoder(conn)
	send := func(resp rpcResponse) {
		wmu.Lock()
		defer wmu.Unlock()
		enc.Encode(resp)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for {
		var req rpcRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		go s.handleRPC(ctx, req, send)
	}
}

func (s *Service) handleRPC(ctx context.Context, req rpcRequest, send func(rpcResponse)) {
	resp := rpcResponse{ID: req.ID}
	switch req.Op {
	case "submit":
		if req.Job == nil {
			resp.Err = "submit without job"
			break
		}
		h, err := s.Submit(ctx, req.Job.toJob())
		if err != nil {
			resp.Err = err.Error()
			break
		}
		select {
		case <-h.Done():
			res, _ := h.TryResult()
			resp.Result = &res
		case <-ctx.Done():
			resp.Err = "connection closed"
		}
	case "put":
		s.Put(req.Name, req.Data)
	case "get":
		data, ok := s.Get(req.Name)
		resp.Data, resp.Found = data, ok
	case "workers":
		resp.N = s.Workers()
	case "ensure":
		if err := s.EnsureWorkers(ctx, req.N); err != nil {
			resp.Err = err.Error()
		}
		resp.N = s.Workers()
	default:
		resp.Err = fmt.Sprintf("unknown op %q", req.Op)
	}
	send(resp)
}

// Client talks to a CoasterService.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	wmu  sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan rpcResponse
	seq     uint64
	closed  bool
}

// DialClient connects to a service RPC endpoint.
func DialClient(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, enc: json.NewEncoder(conn), pending: map[uint64]chan rpcResponse{}}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	dec := json.NewDecoder(bufio.NewReader(c.conn))
	for {
		var resp rpcResponse
		if err := dec.Decode(&resp); err != nil {
			c.mu.Lock()
			c.closed = true
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

func (c *Client) call(ctx context.Context, req rpcRequest) (rpcResponse, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return rpcResponse{}, fmt.Errorf("coasters: client closed")
	}
	c.seq++
	req.ID = c.seq
	ch := make(chan rpcResponse, 1)
	c.pending[req.ID] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := c.enc.Encode(req)
	c.wmu.Unlock()
	if err != nil {
		return rpcResponse{}, err
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return rpcResponse{}, fmt.Errorf("coasters: connection lost")
		}
		if resp.Err != "" {
			return resp, fmt.Errorf("coasters: %s", resp.Err)
		}
		return resp, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return rpcResponse{}, ctx.Err()
	}
}

// Submit runs a job to completion through the service.
func (c *Client) Submit(ctx context.Context, job WireJob) (*dispatch.JobResult, error) {
	resp, err := c.call(ctx, rpcRequest{Op: "submit", Job: &job})
	if err != nil {
		return nil, err
	}
	return resp.Result, nil
}

// Put stages a file to the service.
func (c *Client) Put(ctx context.Context, name string, data []byte) error {
	_, err := c.call(ctx, rpcRequest{Op: "put", Name: name, Data: data})
	return err
}

// Get fetches a staged file.
func (c *Client) Get(ctx context.Context, name string) ([]byte, bool, error) {
	resp, err := c.call(ctx, rpcRequest{Op: "get", Name: name})
	if err != nil {
		return nil, false, err
	}
	return resp.Data, resp.Found, nil
}

// Workers reports the service pool size.
func (c *Client) Workers(ctx context.Context) (int, error) {
	resp, err := c.call(ctx, rpcRequest{Op: "workers"})
	return resp.N, err
}

// Ensure asks the service to grow the pool to n workers.
func (c *Client) Ensure(ctx context.Context, n int) (int, error) {
	resp, err := c.call(ctx, rpcRequest{Op: "ensure", N: n})
	return resp.N, err
}

// Close drops the connection.
func (c *Client) Close() error { return c.conn.Close() }

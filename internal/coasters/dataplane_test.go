package coasters

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"jets/internal/dispatch"
	"jets/internal/hydra"
	"jets/internal/proto"
)

// collectTaskOutput drains the client's output channel until every task in
// want has delivered at least want[taskID] bytes, or the deadline passes.
func collectTaskOutput(t *testing.T, c *DataClient, want map[string]int, deadline time.Duration) map[string][]byte {
	t.Helper()
	got := map[string][]byte{}
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	done := func() bool {
		for id, n := range want {
			if len(got[id]) < n {
				return false
			}
		}
		return true
	}
	for !done() {
		select {
		case ch, ok := <-c.Outputs():
			if !ok {
				t.Fatalf("output channel closed early; got %v", lens(got))
			}
			got[ch.TaskID] = append(got[ch.TaskID], ch.Data...)
		case <-timer.C:
			t.Fatalf("timed out waiting for output; got %v want %v", lens(got), want)
		}
	}
	return got
}

func lens(m map[string][]byte) map[string]int {
	out := map[string]int{}
	for k, v := range m {
		out[k] = len(v)
	}
	return out
}

// TestDataPlaneInteropMatrix is the encoding-interop matrix: {v1, v2
// worker} x {v1, v2 client} x {raw passthrough on, off}, all through a real
// dispatcher and data-plane endpoint. Every combination must deliver
// byte-identical stage and output payloads — the wire encoding and the
// relay mode are transparent.
func TestDataPlaneInteropMatrix(t *testing.T) {
	payload := append(bytes.Repeat([]byte{0x5A}, 700), 0x00, 0xBF, 0x7B, 0xDB, 0xFF)
	for _, workerJSON := range []bool{false, true} {
		for _, clientJSON := range []bool{false, true} {
			for _, noRaw := range []bool{false, true} {
				name := fmt.Sprintf("worker_v%d/client_v%d/passthrough_%v",
					ver(workerJSON), ver(clientJSON), !noRaw)
				t.Run(name, func(t *testing.T) {
					cacheRoot := t.TempDir()
					runner := hydra.NewFuncRunner()
					runner.Register("emit", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
						stdout.Write(payload)
						return 0
					})
					svc, err := NewService(Config{
						Provider:   &LocalProvider{Runner: runner, JSONWire: workerJSON, CacheDir: cacheRoot},
						NoRawRelay: noRaw,
					})
					if err != nil {
						t.Fatal(err)
					}
					defer svc.Close()
					if err := svc.EnsureWorkers(context.Background(), 2); err != nil {
						t.Fatal(err)
					}
					addr, err := svc.ServeData("")
					if err != nil {
						t.Fatal(err)
					}
					dc, err := DialData(addr, clientJSON)
					if err != nil {
						t.Fatal(err)
					}
					defer dc.Close()

					// Stage in through the data plane: service store and every
					// worker cache must hold the exact bytes.
					if err := dc.Stage("model.bin", payload, 5*time.Second); err != nil {
						t.Fatal(err)
					}
					stored, ok := svc.Get("model.bin")
					if !ok || !bytes.Equal(stored, payload) {
						t.Fatalf("service store: ok=%v len=%d", ok, len(stored))
					}
					// The staged ack confirms the service store; worker fan-out
					// is asynchronous, so poll for both caches.
					deadline := time.Now().Add(5 * time.Second)
					for {
						matches, gerr := filepath.Glob(filepath.Join(cacheRoot, "*", "model.bin"))
						if gerr != nil {
							t.Fatal(gerr)
						}
						complete := len(matches) == 2
						for _, m := range matches {
							data, rerr := os.ReadFile(m)
							if rerr != nil || !bytes.Equal(data, payload) {
								complete = false
							}
						}
						if complete {
							break
						}
						if time.Now().After(deadline) {
							t.Fatalf("worker caches never staged: %v", matches)
						}
						time.Sleep(5 * time.Millisecond)
					}

					// Output out through the data plane.
					h, err := svc.Submit(context.Background(), dispatch.Job{
						Spec: hydra.JobSpec{JobID: "j1", NProcs: 1, Cmd: "emit"},
						Type: dispatch.Sequential,
					})
					if err != nil {
						t.Fatal(err)
					}
					if res := h.Wait(); res.Failed {
						t.Fatalf("job failed: %s", res.Err)
					}
					got := collectTaskOutput(t, dc, map[string]int{"j1/seq": len(payload)}, 5*time.Second)
					if !bytes.Equal(got["j1/seq"], payload) {
						t.Fatalf("output payload differs: got %d bytes", len(got["j1/seq"]))
					}
				})
			}
		}
	}
}

func ver(jsonOnly bool) int {
	if jsonOnly {
		return 1
	}
	return 2
}

// TestZeroCopyBufferLifetimeSlowClient is the buffer-lifetime hardening
// test (run under -race in CI): 32 workers stream output concurrently to
// one deliberately slow data client while PoisonFrames scribbles on every
// released buffer. Each task fills its chunks with a task-unique byte, so a
// pooled buffer recycled while still queued for the subscriber would show
// up as a chunk containing foreign or poisoned (0xDB) bytes. Slow-client
// overflow must drop frames, never corrupt or block them.
func TestZeroCopyBufferLifetimeSlowClient(t *testing.T) {
	proto.PoisonFrames(true)
	t.Cleanup(func() { proto.PoisonFrames(false) })

	const (
		workers      = 32
		jobs         = 64
		chunksPerJob = 48 // 3072 chunks total, 3x the subscriber queue, so overflow drops really run
		chunkSize    = 512
	)
	runner := hydra.NewFuncRunner()
	runner.Register("fill", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		b := fillByte(args[0])
		chunk := bytes.Repeat([]byte{b}, chunkSize)
		for i := 0; i < chunksPerJob; i++ {
			stdout.Write(chunk)
		}
		return 0
	})
	svc, err := NewService(Config{Provider: &LocalProvider{Runner: runner}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := svc.EnsureWorkers(context.Background(), workers); err != nil {
		t.Fatal(err)
	}
	addr, err := svc.ServeData("")
	if err != nil {
		t.Fatal(err)
	}
	dc, err := DialData(addr, false)
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()

	// Slow consumer: drain with a delay so the subscriber queue backs up
	// and the drop path runs while workers keep streaming.
	var mu sync.Mutex
	checked := 0
	var consumerDone sync.WaitGroup
	consumerDone.Add(1)
	go func() {
		defer consumerDone.Done()
		for ch := range dc.Outputs() {
			want := fillByte(ch.TaskID)
			for _, b := range ch.Data {
				if b != want {
					t.Errorf("task %s: chunk byte %#x want %#x (recycled or poisoned buffer)", ch.TaskID, b, want)
					return
				}
			}
			mu.Lock()
			checked++
			mu.Unlock()
			time.Sleep(500 * time.Microsecond)
		}
	}()

	var handles []*dispatch.Handle
	for i := 0; i < jobs; i++ {
		id := fmt.Sprintf("fill%d", i)
		h, serr := svc.Submit(context.Background(), dispatch.Job{
			Spec: hydra.JobSpec{JobID: id, NProcs: 1, Cmd: "fill", Args: []string{id + "/seq"}},
			Type: dispatch.Sequential,
		})
		if serr != nil {
			t.Fatal(serr)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		if res := h.Wait(); res.Failed {
			t.Fatalf("job %s failed: %s", res.JobID, res.Err)
		}
	}
	// Give the relay a moment to push what it still holds, then close the
	// client to end the consumer.
	time.Sleep(100 * time.Millisecond)
	dc.Close()
	consumerDone.Wait()

	mu.Lock()
	n := checked
	mu.Unlock()
	if n == 0 {
		t.Fatal("slow client verified zero chunks")
	}
	t.Logf("verified %d chunks, %d dropped at the relay", n, svc.DroppedOutputs())
}

// fillByte derives a task's expected fill from its ID, never colliding with
// the 0xDB poison byte.
func fillByte(taskID string) byte {
	var h uint32 = 2166136261
	for i := 0; i < len(taskID); i++ {
		h = (h ^ uint32(taskID[i])) * 16777619
	}
	b := byte(h % 251)
	if b == 0xDB {
		b = 0x11
	}
	return b
}

package coasters

// The data plane: a proto endpoint (wire protocol v2.1) carrying the bulk
// traffic that the newline-JSON RPC channel is wrong for — stage payloads in
// and task output out. A data client performs the same register/negotiate
// handshake as a worker; once both sides speak binary, stage payloads travel
// as raw length-prefixed bytes (no base64) and output frames produced by
// workers are forwarded to subscribers without a decode/re-encode cycle:
// the dispatcher's OnOutputFrame hook hands the service the raw frame, each
// subscriber queue takes a reference, and the per-subscriber writer puts the
// original bytes on the wire before releasing it.
//
// A slow client never stalls a worker's reader: subscriber queues are
// bounded and overflow drops the frame (releasing its reference and
// counting it) rather than blocking the relay.

import (
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"jets/internal/proto"
)

// subscriber is one data-plane connection receiving relayed output.
type subscriber struct {
	codec *proto.Codec
	q     chan *proto.Frame // entries hold one reference each
	quit  chan struct{}

	// dropWarned rate-limits the slow-subscriber diagnostic to one warning
	// per connection: the first dropped frame logs, the rest only count.
	dropWarned atomic.Bool
}

// offer hands a frame to the subscriber's writer without blocking,
// reporting whether it was queued (false: the subscriber is gone or too
// slow, and the frame was dropped with its reference returned).
func (sub *subscriber) offer(f *proto.Frame) bool {
	select {
	case <-sub.quit:
		return false
	default:
	}
	f.Retain()
	select {
	case sub.q <- f:
		return true
	default:
		f.Release()
		return false
	}
}

// writeLoop drains the subscriber queue onto the connection. Raw
// passthrough applies when the frame's encoding is readable by this peer
// (JSON always; binary only after the peer negotiated it) and NoRawRelay is
// off; otherwise the frame is decoded and re-encoded through the typed
// path. Either way the queue's reference is released after the bytes are in
// the connection's write buffer.
func (sub *subscriber) writeLoop(noRaw bool) {
	defer func() {
		for {
			select {
			case f := <-sub.q:
				f.Release()
			default:
				return
			}
		}
	}()
	write := func(f *proto.Frame) error {
		defer f.Release()
		if !noRaw && (!f.Binary() || sub.codec.BinaryEnabled()) {
			return sub.codec.SendRawBuffered(f.Payload())
		}
		env, err := f.Envelope()
		if err != nil {
			return nil // corrupt relay frame: drop it, keep the connection
		}
		// The decoded envelope is shared by every relay of this frame; send
		// a shallow copy because Send stamps Seq on its argument.
		e := *env
		return sub.codec.SendBuffered(&e)
	}
	for {
		select {
		case <-sub.quit:
			return
		case f := <-sub.q:
			if err := write(f); err != nil {
				return
			}
			// Coalesce whatever is already queued into this flush.
		more:
			for {
				select {
				case f := <-sub.q:
					if err := write(f); err != nil {
						return
					}
				default:
					break more
				}
			}
			if err := sub.codec.Flush(); err != nil {
				return
			}
		}
	}
}

// relayOutput is the dispatcher's OnOutputFrame hook: fan the borrowed
// frame out to every subscriber queue (each taking its own reference).
func (s *Service) relayOutput(f *proto.Frame) {
	s.subMu.RLock()
	for sub := range s.subs {
		if !sub.offer(f) {
			s.droppedOut.Add(1)
			if sub.dropWarned.CompareAndSwap(false, true) {
				log.Printf("coasters: data-plane subscriber %s is not keeping up; dropping output frames (see jets_dataplane_dropped_outputs_total)",
					sub.codec.RemoteAddr())
			}
		}
	}
	s.subMu.RUnlock()
}

// DroppedOutputs reports output frames dropped because a subscriber queue
// was full (slow client) or closing.
func (s *Service) DroppedOutputs() int64 { return s.droppedOut.Load() }

// ServeData starts the data-plane listener; returns its address.
func (s *Service) ServeData(addr string) (string, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go s.serveData(proto.NewCodec(conn))
		}
	}()
	s.mu.Lock()
	s.listeners = append(s.listeners, ln)
	s.mu.Unlock()
	return ln.Addr().String(), nil
}

func (s *Service) serveData(codec *proto.Codec) {
	defer codec.Close()
	first, err := codec.Recv()
	if err != nil || first.Kind != proto.KindRegister || first.Register == nil {
		codec.Send(&proto.Envelope{Kind: proto.KindError, Error: "expected register"})
		return
	}
	ver := proto.Negotiate(first.Proto)
	if ver >= proto.VersionBinary {
		codec.EnableBinary()
	}
	if err := codec.Send(&proto.Envelope{Kind: proto.KindRegistered, Proto: ver}); err != nil {
		return
	}

	sub := &subscriber{codec: codec, q: make(chan *proto.Frame, 1024), quit: make(chan struct{})}
	s.subMu.Lock()
	s.subs[sub] = struct{}{}
	s.subMu.Unlock()
	go sub.writeLoop(s.cfg.NoRawRelay)
	defer func() {
		s.subMu.Lock()
		delete(s.subs, sub)
		s.subMu.Unlock()
		close(sub.quit)
	}()

	for {
		f, err := codec.RecvFrame()
		if err != nil {
			return
		}
		if f.Kind() == proto.KindStage {
			if env, derr := f.Envelope(); derr == nil && env.Stage != nil {
				s.mu.Lock()
				s.staged[env.Stage.Name] = append([]byte(nil), env.Stage.Data...)
				s.stagedFiles.Add(1)
				s.stagedBytes.Add(int64(len(env.Stage.Data)))
				s.mu.Unlock()
				// Relay the original frame bytes to the worker pool; the
				// decoded copy above is the service-side store.
				s.d.StageFrame(f)
				codec.Send(&proto.Envelope{Kind: proto.KindStaged, Stage: &proto.Stage{Name: env.Stage.Name}})
			}
		}
		f.Release()
	}
}

// OutputChunk is one relayed piece of task output delivered to a data
// client.
type OutputChunk struct {
	TaskID string
	Stream string
	Data   []byte
}

// DataClient subscribes to a service's data plane: it stages files through
// the binary channel and receives relayed task output.
type DataClient struct {
	codec   *proto.Codec
	outputs chan OutputChunk

	mu     sync.Mutex
	acks   map[string][]chan struct{}
	closed bool
}

// DialData connects to a ServeData endpoint and performs the register
// handshake. jsonOnly pins the client to the v1 JSON wire format (old-peer
// interop); otherwise the binary fast path is negotiated.
func DialData(addr string, jsonOnly bool) (*DataClient, error) {
	codec, err := proto.Dial(addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	var announce uint8
	if !jsonOnly {
		announce = proto.VersionBinary
	}
	if err := codec.Send(&proto.Envelope{
		Kind: proto.KindRegister, Proto: announce,
		Register: &proto.Register{WorkerID: "data-client"},
	}); err != nil {
		codec.Close()
		return nil, err
	}
	ack, err := codec.Recv()
	if err != nil || ack.Kind != proto.KindRegistered {
		codec.Close()
		return nil, fmt.Errorf("coasters: data handshake failed: %v", err)
	}
	if !jsonOnly && ack.Proto >= proto.VersionBinary {
		codec.EnableBinary()
	}
	c := &DataClient{
		codec:   codec,
		outputs: make(chan OutputChunk, 1024),
		acks:    map[string][]chan struct{}{},
	}
	go c.readLoop()
	return c, nil
}

func (c *DataClient) readLoop() {
	for {
		env, err := c.codec.Recv()
		if err != nil {
			c.mu.Lock()
			c.closed = true
			for name, chans := range c.acks {
				for _, ch := range chans {
					close(ch)
				}
				delete(c.acks, name)
			}
			c.mu.Unlock()
			close(c.outputs)
			return
		}
		switch env.Kind {
		case proto.KindOutput:
			if env.Output != nil {
				// Deliberately blocking: a client that does not drain
				// Outputs applies backpressure HERE, on its own socket —
				// the service side drops instead of blocking.
				c.outputs <- OutputChunk{TaskID: env.Output.TaskID, Stream: env.Output.Stream, Data: env.Output.Data}
			}
		case proto.KindStaged:
			if env.Stage != nil {
				c.mu.Lock()
				if chans := c.acks[env.Stage.Name]; len(chans) > 0 {
					close(chans[0])
					c.acks[env.Stage.Name] = chans[1:]
				}
				c.mu.Unlock()
			}
		}
	}
}

// Stage sends a file through the data plane and waits for the service's
// staged ack.
func (c *DataClient) Stage(name string, data []byte, timeout time.Duration) error {
	ch := make(chan struct{})
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("coasters: data client closed")
	}
	c.acks[name] = append(c.acks[name], ch)
	c.mu.Unlock()
	if err := c.codec.Send(&proto.Envelope{
		Kind:  proto.KindStage,
		Stage: &proto.Stage{Name: name, Data: data},
	}); err != nil {
		return err
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-ch:
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return fmt.Errorf("coasters: connection lost before staged ack")
		}
		return nil
	case <-t.C:
		return fmt.Errorf("coasters: staged ack for %q timed out", name)
	}
}

// Outputs delivers relayed task output; the channel closes when the
// connection drops.
func (c *DataClient) Outputs() <-chan OutputChunk { return c.outputs }

// Close drops the data-plane connection.
func (c *DataClient) Close() error { return c.codec.Close() }

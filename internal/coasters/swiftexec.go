package coasters

import (
	"context"
	"fmt"
	"sync/atomic"

	"jets/internal/swiftlang"
)

// SwiftExecutor adapts a CoasterService client to the mini-Swift executor
// interface, forming the paper's full MPICH/Coasters pipeline (Fig. 5): the
// Swift script produces tasks, the CoasterService allocates workers and
// drives the mpiexec mechanism, and the JETS dispatcher decomposes MPI jobs
// onto the pool.
type SwiftExecutor struct {
	client *Client
	seq    atomic.Int64
}

// NewSwiftExecutor wraps a connected client.
func NewSwiftExecutor(client *Client) *SwiftExecutor {
	return &SwiftExecutor{client: client}
}

// Execute implements swiftlang.Executor.
func (x *SwiftExecutor) Execute(ctx context.Context, inv swiftlang.AppInvocation) error {
	job := WireJob{
		JobID:  fmt.Sprintf("swift-%s-%d", inv.App, x.seq.Add(1)),
		NProcs: 1,
		Cmd:    inv.Tokens[0],
		Args:   inv.Tokens[1:],
	}
	if inv.NProcs > 0 {
		job.MPI = true
		job.NProcs = inv.NProcs
	}
	res, err := x.client.Submit(ctx, job)
	if err != nil {
		return err
	}
	if res == nil {
		return fmt.Errorf("coasters: no result for job %s", job.JobID)
	}
	if res.Failed {
		return fmt.Errorf("coasters: job %s failed: %s", job.JobID, res.Err)
	}
	return nil
}

var _ swiftlang.Executor = (*SwiftExecutor)(nil)

package coasters

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"
	"time"

	"jets/internal/hydra"
	"jets/internal/mpi"
	"jets/internal/swiftlang"
)

// TestSwiftThroughCoasters runs a mini-Swift script end to end through the
// CoasterService RPC: Swift -> Coasters client -> service -> dispatcher ->
// workers -> mpiexec/proxies -> mini-MPI. This is the full Fig. 5 pipeline.
func TestSwiftThroughCoasters(t *testing.T) {
	runner := hydra.NewFuncRunner()
	runner.Register("simulate", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		comm, err := mpi.InitEnvFrom(env)
		if err != nil {
			return 1
		}
		defer comm.Close()
		if err := comm.Barrier(); err != nil {
			return 1
		}
		return 0
	})
	svc, err := NewService(Config{Provider: &LocalProvider{Runner: runner, Cores: 4}})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	addr, err := svc.Serve("")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := DialClient(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	script := `
app () simulate (int n, int i) mpi n { "simulate" i; }
foreach i in [0:5] {
    simulate(3, i);
}
trace("all submitted");
`
	var out bytes.Buffer
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	err = swiftlang.RunScript(ctx, script, swiftlang.Config{
		Executor: NewSwiftExecutor(cl),
		Stdout:   &out,
		WorkDir:  t.TempDir(),
	})
	if err != nil {
		t.Fatalf("script: %v", err)
	}
	if !strings.Contains(out.String(), "all submitted") {
		t.Fatalf("out=%s", out.String())
	}
	// The MPI-aware allocation must have booted at least 3 workers.
	if svc.Workers() < 3 {
		t.Fatalf("workers=%d", svc.Workers())
	}
	st := svc.Dispatcher().Stats()
	if st.JobsCompleted != 6 || st.JobsFailed != 0 {
		t.Fatalf("stats %+v", st)
	}
}

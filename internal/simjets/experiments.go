package simjets

import (
	"fmt"
	"time"

	"jets/internal/event"
	"jets/internal/metrics"
	"jets/internal/namd"
	"jets/internal/rem"
)

// This file contains one driver per evaluation figure. Each returns the
// rows/series the paper plots; cmd/jets-bench and bench_test.go print them.

// ---------------------------------------------------------------------------
// Fig. 6 — sequential task rate on the BG/P.

// RateRow is one Fig. 6 point.
type RateRow struct {
	Nodes      int
	Cores      int
	JobsPerSec float64
}

// Fig06SequentialRate measures the sustained no-op task launch rate for each
// allocation size, with one worker per core as in §6.1.1.
func Fig06SequentialRate(allocs []int, jobsPerWorker int, seed int64) []RateRow {
	var rows []RateRow
	for _, nodes := range allocs {
		sim := event.New(seed)
		prof := Surveyor(nodes)
		m := NewModel(sim, prof, prof.CoresPerNode)
		m.Start()
		total := jobsPerWorker * m.Workers()
		for i := 0; i < total; i++ {
			m.Submit(&SimJob{ID: fmt.Sprintf("noop%d", i), NProcs: 1, Sequential: true})
		}
		sim.Run(0)
		span := m.Span()
		rate := 0.0
		if span > 0 {
			rate = float64(m.Completed) / span.Seconds()
		}
		rows = append(rows, RateRow{Nodes: nodes, Cores: m.Workers(), JobsPerSec: rate})
	}
	return rows
}

// Fig06Ideal returns the "ideal" single point: the per-node process launch
// rate without JETS (pure fork/exec on all 4 cores, no communication).
func Fig06Ideal() float64 {
	const pureFork = 15 * time.Millisecond
	return 4 / pureFork.Seconds()
}

// ---------------------------------------------------------------------------
// Fig. 7 — MPI task launch, cluster setting; JETS vs shell-script baseline.

// UtilRow is one utilization measurement.
type UtilRow struct {
	Alloc       int
	Mode        string
	NProc       int
	Utilization float64
}

// Fig07Cluster runs the 1-second barrier-wait workload on the Breadboard
// profile: JETS with 4- and 8-process tasks, and the mpiexec shell-script
// baseline that can only use the entire allocation.
func Fig07Cluster(allocs []int, seed int64) []UtilRow {
	var rows []UtilRow
	for _, nodes := range allocs {
		for _, nproc := range []int{4, 8} {
			if nproc > nodes {
				continue
			}
			u := runMPIWorkload(Breadboard(nodes), nodes, nproc, 1, time.Second, 20, seed, false)
			rows = append(rows, UtilRow{Alloc: nodes, Mode: fmt.Sprintf("jets-%dproc", nproc), NProc: nproc, Utilization: u})
		}
		rows = append(rows, UtilRow{
			Alloc: nodes, Mode: "shell-script", NProc: nodes,
			Utilization: BaselineShellScript(nodes, 20, time.Second),
		})
	}
	return rows
}

// BaselineShellScript models the §6.1.2 baseline: a loop calling mpiexec
// over the whole allocation; every iteration pays mpiexec setup plus the
// ssh-launcher fan-out across all nodes before the task's useful second.
func BaselineShellScript(nodes, iterations int, think time.Duration) float64 {
	// mpiexec's ssh launcher starts proxies with bounded parallelism; the
	// effective startup grows with node count.
	waves := (nodes + SSHFanout - 1) / SSHFanout
	perIter := BaselineMPIExecSetup + time.Duration(waves)*SSHStartup + think
	total := time.Duration(iterations) * perIter
	return metrics.Utilization(think, iterations, nodes, nodes, total)
}

// runMPIWorkload runs a uniform batch of barrier-wait MPI jobs and returns
// Eq. (1) utilization. jobsPerNode controls batch depth; jitterPct adds
// per-job duration variance when nonzero.
func runMPIWorkload(prof Profile, nodes, nproc, ppn int, think time.Duration, jobsPerNode int, seed int64, swift bool) float64 {
	sim := event.New(seed)
	m := NewModel(sim, prof, 1)
	m.Start()
	count := nodes * jobsPerNode / nproc
	if count == 0 {
		count = 1
	}
	for i := 0; i < count; i++ {
		jitter := time.Duration(sim.Rand().Int63n(int64(think/20 + 1))) // up to 5%
		m.Submit(&SimJob{
			ID:           fmt.Sprintf("j%d", i),
			NProcs:       nproc,
			PPN:          ppn,
			Think:        think + jitter,
			SwiftManaged: swift,
		})
	}
	sim.Run(0)
	// Normalize to the cores the workload actually populates: PPN processes
	// per node.
	norm := ppn
	if norm < 1 {
		norm = 1
	}
	return m.Utilization(norm)
}

// ---------------------------------------------------------------------------
// Fig. 9 — MPI task launch on the BG/P.

// Fig09BGP sweeps allocation {256,512,1024} x task size {4,8,64} with 10-s
// tasks, one process per node, 20 tasks per node (§6.1.4).
func Fig09BGP(allocs, sizes []int, seed int64) []UtilRow {
	var rows []UtilRow
	for _, nodes := range allocs {
		for _, nproc := range sizes {
			if nproc > nodes {
				continue
			}
			u := runMPIWorkload(Surveyor(nodes), nodes, nproc, 1, 10*time.Second, 20, seed, false)
			rows = append(rows, UtilRow{Alloc: nodes, Mode: fmt.Sprintf("%d-proc", nproc), NProc: nproc, Utilization: u})
		}
	}
	return rows
}

// ---------------------------------------------------------------------------
// Fig. 10 — faulty setting.

// FaultTrace is the Fig. 10 time series pair.
type FaultTrace struct {
	Alive   metrics.Series // "nodes available"
	Running metrics.Series // "running jobs"
	// KillTimes are the injection instants.
	KillTimes []time.Duration
}

// Fig10Faulty reproduces §6.1.5: a 32-worker allocation running sequential
// tasks while one randomly selected pilot job is terminated every interval.
func Fig10Faulty(workers int, interval, taskDur time.Duration, seed int64) FaultTrace {
	sim := event.New(seed)
	prof := Surveyor((workers + 3) / 4)
	prof.Nodes = workers // one worker per "node" for this test
	m := NewModel(sim, prof, 1)
	m.BootSpread = 500 * time.Millisecond
	m.Start()
	// Deep queue of sequential tasks so work never runs out.
	for i := 0; i < workers*200; i++ {
		m.Submit(&SimJob{ID: fmt.Sprintf("t%d", i), NProcs: 1, Sequential: true, Think: taskDur})
	}
	var trace FaultTrace
	var kill func()
	kill = func() {
		if !m.KillRandomAlive() {
			return
		}
		trace.KillTimes = append(trace.KillTimes, sim.Now())
		sim.After(interval, kill)
	}
	sim.After(interval, kill)
	// Stop the run shortly after the last possible kill.
	deadline := time.Duration(workers+2) * interval
	sim.RunUntil(deadline)
	trace.Alive = m.AliveSeries
	trace.Running = m.RunSeries
	return trace
}

// ---------------------------------------------------------------------------
// Fig. 11 — NAMD wall-time distribution (sampled, no cluster model needed).

// Fig11Histogram draws n NAMD segment wall times and bins them as Fig. 11.
func Fig11Histogram(n int, seed int64) *metrics.Histogram {
	sim := event.New(seed)
	h := metrics.NewHistogram(100, 170, 14)
	for i := 0; i < n; i++ {
		h.Add(namd.SampleWallTime(sim.Rand()).Seconds())
	}
	return h
}

// ---------------------------------------------------------------------------
// Figs. 12 & 13 — NAMD batches on the BG/P.

// Fig12NAMD runs the §6.1.6 batches: for each allocation size, 6 jobs per
// node on average, 4 processes per job (one per node), NAMD-distributed
// durations, with the paper's per-job I/O volumes against PVFS.
func Fig12NAMD(allocs []int, seed int64) []UtilRow {
	var rows []UtilRow
	for _, nodes := range allocs {
		m, _ := runNAMDBatch(nodes, seed)
		rows = append(rows, UtilRow{Alloc: nodes, Mode: "namd-4proc", NProc: 4, Utilization: m.Utilization(1)})
	}
	return rows
}

func runNAMDBatch(nodes int, seed int64) (*Model, *event.Sim) {
	sim := event.New(seed)
	prof := Surveyor(nodes)
	m := NewModel(sim, prof, 1)
	m.Start()
	const procs = 4
	count := nodes * 6 / procs
	for i := 0; i < count; i++ {
		m.Submit(&SimJob{
			ID:         fmt.Sprintf("namd%d", i),
			NProcs:     procs,
			Think:      namd.SampleWallTime(sim.Rand()),
			ReadBytes:  namd.InputBytes,
			WriteBytes: namd.OutputBytes,
			MetaOps:    8, // 5 input + 3 output files
		})
	}
	sim.Run(0)
	return m, sim
}

// Fig13LoadLevel returns the busy-core series for the full-rack (1,024-node)
// NAMD batch of Fig. 13.
func Fig13LoadLevel(seed int64) *metrics.Series {
	m, _ := runNAMDBatch(1024, seed)
	return metrics.LoadLevel(m.AllRecords)
}

// ---------------------------------------------------------------------------
// Fig. 15 — Swift/Coasters synthetic workloads on Eureka.

// SwiftRow is one Fig. 15 measurement.
type SwiftRow struct {
	Alloc       int
	NodesPerJob int
	PPN         int
	Utilization float64
}

// Fig15Swift sweeps allocation {16,32,64} nodes x nodes-per-job x PPN with
// the 10-s synthetic task of §6.2.1, Swift-managed, binary read from GPFS
// per process.
func Fig15Swift(allocs, nodesPerJob, ppns []int, seed int64) []SwiftRow {
	var rows []SwiftRow
	for _, alloc := range allocs {
		for _, npj := range nodesPerJob {
			if npj > alloc {
				continue
			}
			for _, ppn := range ppns {
				u := runMPIWorkload(Eureka(alloc), alloc, npj, ppn, 10*time.Second, 8, seed, true)
				rows = append(rows, SwiftRow{Alloc: alloc, NodesPerJob: npj, PPN: ppn, Utilization: u})
			}
		}
	}
	return rows
}

// DispatcherSensitivity sweeps the central scheduler's per-message service
// time at the full-rack sequential workload, showing how the Fig. 6
// saturation rate tracks the dispatcher's speed — the design argument for
// JETS's "simple, reusable threading abstractions" (§3 principle 1): a
// slower scheduler caps the whole machine.
func DispatcherSensitivity(nodes int, services []time.Duration, seed int64) []RateRow {
	var rows []RateRow
	for _, svc := range services {
		sim := event.New(seed)
		prof := Surveyor(nodes)
		prof.DispatchService = svc
		m := NewModel(sim, prof, prof.CoresPerNode)
		m.Start()
		total := 20 * m.Workers()
		for i := 0; i < total; i++ {
			m.Submit(&SimJob{ID: fmt.Sprintf("n%d", i), NProcs: 1, Sequential: true})
		}
		sim.Run(0)
		rate := 0.0
		if span := m.Span(); span > 0 {
			rate = float64(m.Completed) / span.Seconds()
		}
		rows = append(rows, RateRow{Nodes: nodes, Cores: m.Workers(), JobsPerSec: rate})
	}
	return rows
}

// Fig15LocalStorage is the local-storage ablation: the Fig. 15 conditions
// with the application binary either re-read from GPFS at every process
// start or cached in node-local RAM (the JETS start-script optimization the
// production guidance in §6.2.1 recommends). Returns utilization.
func Fig15LocalStorage(alloc, nodesPerJob, ppn int, localBinary bool, seed int64) float64 {
	prof := Eureka(alloc)
	if localBinary {
		prof.BinaryBytes = 0 // cached node-locally: no shared-FS read
	}
	return runMPIWorkload(prof, alloc, nodesPerJob, ppn, 10*time.Second, 8, seed, true)
}

// ---------------------------------------------------------------------------
// Fig. 18 — REM dataflow through Swift.

// remDataflow simulates the asynchronous REM dataflow of Fig. 16: segment
// (i,j) runs when segment (i,j-1) and the round-(j-1) exchange with its
// neighbour have completed; exchanges are filesystem-bound tasks on the
// login node. Segments are data-dependent, not barrier-synchronized.
type remDataflow struct {
	m         *Model
	replicas  int
	rounds    int
	nprocs    int // nodes per segment
	ppn       int
	single    bool
	segDur    func() time.Duration
	segs      [][]bool // [replica][round] completed
	exchanged [][]bool // [round][pair] done
}

// Fig18REM runs the §6.2.2 series. single=true is the 18a configuration
// (replicas = 2x nodes, single-process segments, 4 exchanges); single=false
// is 18b (8 replicas, PPN 8, nodes/4 per segment, 6 exchanges).
func Fig18REM(allocs []int, single bool, seed int64) []UtilRow {
	var rows []UtilRow
	for _, alloc := range allocs {
		sim := event.New(seed)
		prof := Eureka(alloc)
		m := NewModel(sim, prof, 1)
		m.Start()

		df := &remDataflow{m: m, single: single}
		if single {
			df.replicas = 2 * alloc
			df.rounds = 5 // 4 exchanges => 5 segment columns
			df.nprocs = 1
			df.ppn = 1
		} else {
			df.replicas = 8
			df.rounds = 7 // 6 exchanges
			df.nprocs = alloc / 4
			if df.nprocs < 1 {
				df.nprocs = 1
			}
			df.ppn = 8
		}
		df.segDur = func() time.Duration { return namd.SampleWallTime(sim.Rand()) }
		df.segs = make([][]bool, df.replicas)
		for i := range df.segs {
			df.segs[i] = make([]bool, df.rounds)
		}
		df.exchanged = make([][]bool, df.rounds)
		for i := range df.exchanged {
			df.exchanged[i] = make([]bool, df.replicas)
		}
		for i := 0; i < df.replicas; i++ {
			df.submitSegment(i, 0)
		}
		sim.Run(0)
		mode, norm := "rem-mpi", 8 // 18b uses all 8 Eureka cores per node
		if single {
			mode, norm = "rem-single", 1 // 18a runs one process per node
		}
		rows = append(rows, UtilRow{Alloc: alloc, Mode: mode, NProc: df.nprocs * df.ppn, Utilization: m.Utilization(norm)})
	}
	return rows
}

func (df *remDataflow) submitSegment(replica, round int) {
	j := &SimJob{
		ID:           fmt.Sprintf("r%d-seg%d", replica, round),
		NProcs:       df.nprocs,
		PPN:          df.ppn,
		Think:        df.segDur(),
		Sequential:   df.single,
		SwiftManaged: true,
		ReadBytes:    namd.InputBytes,
		WriteBytes:   namd.OutputBytes,
		MetaOps:      8,
		OnDone: func(_ *SimJob, failed bool) {
			if failed {
				return
			}
			df.segmentDone(replica, round)
		},
	}
	df.m.Submit(j)
}

func (df *remDataflow) segmentDone(replica, round int) {
	df.segs[replica][round] = true
	if round == df.rounds-1 {
		return
	}
	// Find this replica's exchange partner for this round; if both segments
	// are complete, run the exchange on the login node, then start both
	// next segments.
	for _, p := range rem.Pairs(df.replicas, round) {
		if p[0] != replica && p[1] != replica {
			continue
		}
		a, b := p[0], p[1]
		if df.segs[a][round] && df.segs[b][round] && !df.exchanged[round][a] {
			df.exchanged[round][a] = true
			df.exchanged[round][b] = true
			df.runExchange(a, b, round)
		}
		return
	}
	// Unpaired replica this round (odd count): proceed directly.
	df.submitSegment(replica, round+1)
}

func (df *remDataflow) runExchange(a, b, round int) {
	m := df.m
	// The exchange is a small filesystem-bound script executed on the login
	// node (§6.2.2), freeing compute nodes for ready segments.
	m.login.Request(60*time.Millisecond, func() {
		ops := 4
		left := ops
		for i := 0; i < ops; i++ {
			m.FS.Open(func() {
				left--
				if left == 0 {
					df.submitSegment(a, round+1)
					df.submitSegment(b, round+1)
				}
			})
		}
	})
}

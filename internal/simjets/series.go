package simjets

import (
	"time"

	"jets/internal/metrics"
)

// seriesRec bounds a metrics.Series to a maximum point count by decimating
// to a coarser time resolution as the run grows. At 10⁶ workers a
// per-event-sampled series dominates memory (every job start/stop appends a
// point); decimation keeps the series a faithful step function at a bounded
// resolution instead.
//
// Strategy: points closer than gap to the previously kept point coalesce
// into it (the kept point takes the latest timestamp and value, so the
// series always ends on the most recent sample). When the series still
// reaches cap points, the whole series is compacted in place at a doubled
// gap sized so roughly cap/2 points span the run so far. Queries through
// metrics.Series.At are exact at kept points and off by at most one gap
// window between them. A cap of 0 disables decimation entirely.
type seriesRec struct {
	cap int
	gap time.Duration
}

func (r *seriesRec) sample(s *metrics.Series, t time.Duration, v float64) {
	n := len(s.T)
	if n > 0 && r.gap > 0 && t-s.T[n-1] < r.gap {
		s.T[n-1], s.V[n-1] = t, v
		return
	}
	if r.cap > 0 && n >= r.cap {
		r.compact(s, t)
	}
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// compact rewrites the series keeping the last sample of each gap window,
// after widening gap to target about cap/2 surviving points.
func (r *seriesRec) compact(s *metrics.Series, now time.Duration) {
	span := now - s.T[0]
	min := span / time.Duration(r.cap/2)
	if r.gap >= min {
		min = r.gap * 2
	}
	if min <= 0 {
		min = 1
	}
	r.gap = min
	out := 0
	for i := 0; i < len(s.T); i++ {
		if out > 0 && s.T[i]-s.T[out-1] < r.gap {
			s.T[out-1], s.V[out-1] = s.T[i], s.V[i]
			continue
		}
		s.T[out], s.V[out] = s.T[i], s.V[i]
		out++
	}
	s.T, s.V = s.T[:out], s.V[:out]
}

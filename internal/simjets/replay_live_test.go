package simjets

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"jets/internal/core"
	"jets/internal/dispatch"
	"jets/internal/hydra"
)

// TestReplayLiveEngineTrace is the capture → replay round trip on a real
// engine: run a batch on in-process workers with tracing on, feed the
// recorded JSON-lines trace through ReplayTrace, and require the simulated
// re-execution to land within the documented tolerance (±30% makespan,
// ±0.15 utilization — see EXPERIMENTS.md) of what the live run recorded.
// The live side runs real goroutine workers on a shared machine, so its
// timings carry genuine scheduler noise; the tolerance absorbs that, not
// model error (the synthetic round trip above pins the model at ±10%).
func TestReplayLiveEngineTrace(t *testing.T) {
	rec := &dispatch.TraceRecorder{}
	runner := hydra.NewFuncRunner()
	runner.Register("sleep.sh", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		time.Sleep(40 * time.Millisecond)
		return 0
	})
	e, err := core.NewEngine(core.Options{
		LocalWorkers:   4,
		CoresPerWorker: 1,
		Runner:         runner,
		OnEvent:        rec.Record,
	})
	if err != nil {
		t.Fatal(err)
	}
	var jobs []dispatch.Job
	for i := 0; i < 16; i++ {
		jobs = append(jobs, dispatch.Job{
			Spec: hydra.JobSpec{JobID: fmt.Sprintf("r%d", i), NProcs: 1, Cmd: "sleep.sh"},
			Type: dispatch.Sequential,
		})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := e.RunBatch(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() != 0 {
		t.Fatalf("%d live jobs failed", rep.Failed())
	}
	e.Close()

	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := ReplayTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 16 {
		t.Fatalf("trace reconstructed %d jobs, want 16", len(tr.Jobs))
	}
	if tr.Workers != 4 {
		t.Fatalf("trace saw %d workers, want 4", tr.Workers)
	}

	out := tr.Run(1)
	if out.Completed != 16 || out.Failed != 0 {
		t.Fatalf("replay completed=%d failed=%d", out.Completed, out.Failed)
	}
	if e := out.MakespanError; e < -0.30 || e > 0.30 {
		t.Fatalf("makespan error %.3f outside ±30%%: recorded %v simulated %v",
			e, out.RecordedMakespan, out.SimulatedMakespan)
	}
	if out.UtilizationError > 0.15 {
		t.Fatalf("utilization error %.3f > 0.15 (recorded %.3f simulated %.3f)",
			out.UtilizationError, out.RecordedUtilization, out.SimulatedUtilization)
	}
}

package simjets

import (
	"fmt"
	"testing"
	"time"

	"jets/internal/event"
)

func TestModelSequentialBatch(t *testing.T) {
	sim := event.New(1)
	prof := Breadboard(4)
	m := NewModel(sim, prof, 1)
	m.Start()
	for i := 0; i < 40; i++ {
		m.Submit(&SimJob{ID: fmt.Sprintf("s%d", i), NProcs: 1, Sequential: true, Think: 100 * time.Millisecond})
	}
	sim.Run(0)
	if m.Completed != 40 || m.Failed != 0 {
		t.Fatalf("completed=%d failed=%d", m.Completed, m.Failed)
	}
	if m.QueueLen() != 0 || m.IdleWorkers() != 4 {
		t.Fatalf("queue=%d idle=%d", m.QueueLen(), m.IdleWorkers())
	}
	// 40 x 100ms on 4 workers: span at least 1s.
	if m.Span() < time.Second {
		t.Fatalf("span=%v", m.Span())
	}
}

func TestModelMPIJobUsesGroup(t *testing.T) {
	sim := event.New(1)
	m := NewModel(sim, Breadboard(8), 1)
	m.Start()
	m.Submit(&SimJob{ID: "mpi", NProcs: 8, Think: time.Second})
	sim.Run(0)
	if m.Completed != 1 {
		t.Fatalf("completed=%d", m.Completed)
	}
	rec := m.Records[0]
	if rec.Procs != 8 {
		t.Fatalf("procs=%d", rec.Procs)
	}
	// MPI overhead: record duration exceeds think by wire-up and launch.
	if rec.Duration() <= time.Second {
		t.Fatalf("duration=%v; expected launch overhead on top of 1s", rec.Duration())
	}
}

func TestModelJobLargerThanAllocationNeverRuns(t *testing.T) {
	sim := event.New(1)
	m := NewModel(sim, Breadboard(2), 1)
	m.Start()
	m.Submit(&SimJob{ID: "big", NProcs: 4, Think: time.Second})
	sim.Run(0)
	if m.Completed != 0 || m.QueueLen() != 1 {
		t.Fatalf("completed=%d queue=%d", m.Completed, m.QueueLen())
	}
}

func TestModelFIFOHeadOfLine(t *testing.T) {
	sim := event.New(1)
	m := NewModel(sim, Breadboard(4), 1)
	m.Start()
	var order []string
	mk := func(id string, n int) *SimJob {
		return &SimJob{ID: id, NProcs: n, Think: 100 * time.Millisecond,
			OnDone: func(j *SimJob, failed bool) { order = append(order, j.ID) }}
	}
	m.Submit(mk("first-4proc", 4))
	m.Submit(mk("second-4proc", 4))
	m.Submit(mk("third-1proc", 1))
	sim.Run(0)
	if len(order) != 3 {
		t.Fatalf("order=%v", order)
	}
	if order[0] != "first-4proc" || order[1] != "second-4proc" {
		t.Fatalf("FIFO violated: %v", order)
	}
}

func TestModelKillIdleWorker(t *testing.T) {
	sim := event.New(1)
	m := NewModel(sim, Breadboard(4), 1)
	m.BootSpread = 0
	m.Start()
	sim.RunUntil(time.Second)
	if m.IdleWorkers() != 4 {
		t.Fatalf("idle=%d", m.IdleWorkers())
	}
	m.KillWorker(0)
	if m.IdleWorkers() != 3 {
		t.Fatalf("idle after kill=%d", m.IdleWorkers())
	}
	// A 4-proc job can no longer run.
	m.Submit(&SimJob{ID: "j", NProcs: 4, Think: time.Second})
	sim.Run(0)
	if m.Completed != 0 {
		t.Fatal("job ran on dead allocation")
	}
}

func TestModelKillBusyWorkerAbortsJob(t *testing.T) {
	sim := event.New(1)
	m := NewModel(sim, Breadboard(4), 1)
	m.BootSpread = 0
	m.Start()
	failed := false
	m.Submit(&SimJob{ID: "victim", NProcs: 4, Think: 10 * time.Second,
		OnDone: func(j *SimJob, f bool) { failed = f }})
	sim.RunUntil(2 * time.Second) // job is mid-think
	if m.runningJobs != 1 {
		t.Fatalf("running=%d", m.runningJobs)
	}
	m.KillWorker(1)
	sim.Run(0)
	if !failed || m.Failed != 1 {
		t.Fatalf("failed=%v m.Failed=%d", failed, m.Failed)
	}
	// Surviving 3 workers can still run smaller jobs.
	m.Submit(&SimJob{ID: "after", NProcs: 3, Think: time.Second})
	sim.Run(0)
	if m.Completed != 1 {
		t.Fatalf("completed=%d", m.Completed)
	}
}

func TestFig06Shape(t *testing.T) {
	rows := Fig06SequentialRate([]int{16, 256, 1024}, 10, 1)
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	// Rate grows with allocation and saturates above 7,000/s at full rack.
	if !(rows[0].JobsPerSec < rows[1].JobsPerSec && rows[1].JobsPerSec < rows[2].JobsPerSec) {
		t.Fatalf("rates not increasing: %+v", rows)
	}
	if rows[2].JobsPerSec < 7000 || rows[2].JobsPerSec > 9000 {
		t.Fatalf("full-rack rate %.0f outside paper range", rows[2].JobsPerSec)
	}
	if Fig06Ideal() <= 0 {
		t.Fatal("ideal rate nonpositive")
	}
}

func TestFig07Shape(t *testing.T) {
	rows := Fig07Cluster([]int{16, 64}, 1)
	get := func(alloc int, mode string) float64 {
		for _, r := range rows {
			if r.Alloc == alloc && r.Mode == mode {
				return r.Utilization
			}
		}
		t.Fatalf("missing %d/%s", alloc, mode)
		return 0
	}
	// JETS ~90%, far above the shell-script baseline, which decays with
	// allocation size.
	if u := get(64, "jets-4proc"); u < 0.85 {
		t.Fatalf("jets-4proc@64 = %.2f", u)
	}
	if get(64, "shell-script") > get(16, "shell-script") {
		t.Fatal("baseline should decay with allocation")
	}
	if get(64, "jets-4proc") < get(64, "shell-script")+0.2 {
		t.Fatal("JETS should greatly exceed the baseline")
	}
}

func TestFig09Shape(t *testing.T) {
	rows := Fig09BGP([]int{512, 1024}, []int{4, 8}, 1)
	get := func(alloc, nproc int) float64 {
		for _, r := range rows {
			if r.Alloc == alloc && r.NProc == nproc {
				return r.Utilization
			}
		}
		t.Fatalf("missing %d/%d", alloc, nproc)
		return 0
	}
	// The paper's claim: 4-proc degrades significantly past 512 nodes,
	// falling below the 8-proc curve.
	if get(1024, 4) >= get(512, 4)-0.02 {
		t.Fatalf("no 4-proc degradation: 512=%.3f 1024=%.3f", get(512, 4), get(1024, 4))
	}
	if get(1024, 4) >= get(1024, 8) {
		t.Fatalf("4-proc (%.3f) not below 8-proc (%.3f) at 1024", get(1024, 4), get(1024, 8))
	}
}

func TestFig10Shape(t *testing.T) {
	tr := Fig10Faulty(32, 10*time.Second, 5*time.Second, 1)
	if len(tr.KillTimes) != 32 {
		t.Fatalf("kills=%d", len(tr.KillTimes))
	}
	if tr.Alive.V[len(tr.Alive.V)-1] != 0 {
		t.Fatalf("final alive=%v", tr.Alive.V[len(tr.Alive.V)-1])
	}
	// Running jobs must track nodes available: at each sampled instant
	// after ramp-up, running <= alive, and mostly close to it.
	mid := 150 * time.Second // half the workers gone
	alive := tr.Alive.At(mid)
	running := tr.Running.At(mid)
	if running > alive {
		t.Fatalf("running %v exceeds alive %v", running, alive)
	}
	if alive > 0 && running < alive*0.5 {
		t.Fatalf("utilization collapsed: running=%v alive=%v", running, alive)
	}
}

func TestFig11Shape(t *testing.T) {
	h := Fig11Histogram(2000, 1)
	if h.N != 2000 {
		t.Fatalf("N=%d", h.N)
	}
	bulk := 0
	for i := 0; i < 4; i++ { // 100-120 s region (5s buckets)
		bulk += h.Counts[i]
	}
	if float64(bulk)/float64(h.N) < 0.5 {
		t.Fatalf("bulk fraction %.2f", float64(bulk)/float64(h.N))
	}
	if h.Max() > 170 {
		t.Fatalf("max=%v", h.Max())
	}
}

func TestFig12Shape(t *testing.T) {
	rows := Fig12NAMD([]int{256}, 1)
	if len(rows) != 1 {
		t.Fatalf("rows=%v", rows)
	}
	// "Utilization is near 90%".
	if rows[0].Utilization < 0.82 || rows[0].Utilization > 0.97 {
		t.Fatalf("util=%.3f not near 90%%", rows[0].Utilization)
	}
}

func TestFig13Shape(t *testing.T) {
	s := Fig13LoadLevel(1)
	if s.Len() == 0 {
		t.Fatal("empty series")
	}
	// Full rack, 4-proc jobs, 1 proc/node: peak busy procs near 1024.
	if s.Max() < 900 || s.Max() > 1024 {
		t.Fatalf("peak load %v", s.Max())
	}
	// Ends at zero (batch drains).
	if s.V[len(s.V)-1] != 0 {
		t.Fatalf("final load %v", s.V[len(s.V)-1])
	}
}

func TestFig15Shape(t *testing.T) {
	rows := Fig15Swift([]int{16}, []int{1, 4}, []int{1, 8}, 1)
	get := func(npj, ppn int) float64 {
		for _, r := range rows {
			if r.NodesPerJob == npj && r.PPN == ppn {
				return r.Utilization
			}
		}
		t.Fatalf("missing %d/%d", npj, ppn)
		return 0
	}
	// Increasing PPN reduces utilization (binary re-read per process), and
	// larger node counts per job reduce it further.
	if get(4, 8) >= get(4, 1) {
		t.Fatalf("PPN effect missing: ppn1=%.3f ppn8=%.3f", get(4, 1), get(4, 8))
	}
	if get(4, 8) >= get(1, 8) {
		t.Fatalf("nodes-per-job effect missing: npj1=%.3f npj4=%.3f", get(1, 8), get(4, 8))
	}
	for _, r := range rows {
		if r.Utilization <= 0 || r.Utilization > 1 {
			t.Fatalf("util out of range: %+v", r)
		}
	}
}

func TestFig18Shape(t *testing.T) {
	single := Fig18REM([]int{4, 64}, true, 1)
	mpi := Fig18REM([]int{8, 64}, false, 1)
	// 18a: utilization decreases as the allocation grows.
	if single[1].Utilization >= single[0].Utilization {
		t.Fatalf("18a not decreasing: %.3f -> %.3f", single[0].Utilization, single[1].Utilization)
	}
	// 18b: utilization stays high (>= 0.90) and does not change
	// substantially (within ~4 points across the range).
	for _, r := range mpi {
		if r.Utilization < 0.90 {
			t.Fatalf("18b util %.3f at alloc %d", r.Utilization, r.Alloc)
		}
	}
	spread := mpi[0].Utilization - mpi[1].Utilization
	if spread < -0.05 || spread > 0.05 {
		t.Fatalf("18b not flat: %+v", mpi)
	}
	// MPI mode beats single-process mode at 64 nodes, as the paper reports.
	if mpi[1].Utilization <= single[1].Utilization {
		t.Fatalf("MPI (%.3f) should exceed single (%.3f) at 64", mpi[1].Utilization, single[1].Utilization)
	}
}

func TestFig15LocalStorageAblation(t *testing.T) {
	gpfs := Fig15LocalStorage(16, 4, 8, false, 1)
	local := Fig15LocalStorage(16, 4, 8, true, 1)
	if local <= gpfs {
		t.Fatalf("local storage did not help: gpfs=%.3f local=%.3f", gpfs, local)
	}
	if local < 0.95 {
		t.Fatalf("local-binary utilization %.3f; expected near-ideal", local)
	}
}

func TestDispatcherSensitivity(t *testing.T) {
	rows := DispatcherSensitivity(512, []time.Duration{
		20 * time.Microsecond, 80 * time.Microsecond, 320 * time.Microsecond,
	}, 1)
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	// Slower dispatcher -> lower saturated rate, monotonically.
	if !(rows[0].JobsPerSec > rows[1].JobsPerSec && rows[1].JobsPerSec > rows[2].JobsPerSec) {
		t.Fatalf("rates not monotone in service time: %+v", rows)
	}
	// At 320 us/msg the cap is ~1/(3*320us) ~ 1040/s; verify the model
	// lands in that regime.
	if rows[2].JobsPerSec > 1500 {
		t.Fatalf("slow-dispatcher rate %.0f too high", rows[2].JobsPerSec)
	}
}

func TestBaselineShellScriptMonotone(t *testing.T) {
	prev := 1.0
	for _, nodes := range []int{4, 8, 16, 32, 64} {
		u := BaselineShellScript(nodes, 20, time.Second)
		if u >= prev {
			t.Fatalf("baseline not decreasing at %d: %.3f >= %.3f", nodes, u, prev)
		}
		prev = u
	}
}

func TestModelDeterminism(t *testing.T) {
	run := func() float64 {
		return runMPIWorkload(Breadboard(16), 16, 4, 1, time.Second, 10, 99, false)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestModelPanicsOnBadJob(t *testing.T) {
	sim := event.New(1)
	m := NewModel(sim, Breadboard(2), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-proc job accepted")
		}
	}()
	m.Submit(&SimJob{ID: "bad", NProcs: 0})
}

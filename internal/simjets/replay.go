package simjets

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"jets/internal/dispatch"
	"jets/internal/event"
)

// This file replays live dispatcher traces in the simulator: a JSON-lines
// stream written by the engine's -trace flag (dispatch.Event records) is
// parsed into a submit schedule plus per-job observed service times, then
// re-executed against the simulated JETS model. The calibration report
// compares the simulated makespan and utilization with what the live run
// recorded — the error is the model's fidelity at that workload.

// TraceJob is one job reconstructed from a dispatcher trace.
type TraceJob struct {
	ID string
	// SubmitAt is the job-submitted offset from the trace epoch.
	SubmitAt time.Duration
	// Service is the observed runtime: first task-sent (falling back to
	// job-started) to job-completed.
	Service time.Duration
	// Procs is the rank count, from task-sent events (minimum 1).
	Procs int
	// Retries counts job-retried occurrences.
	Retries int
}

// Trace is a parsed dispatcher trace.
type Trace struct {
	Jobs []TraceJob
	// Workers is the peak simultaneously-registered worker count.
	Workers int
	// WorkersLost counts worker-lost events.
	WorkersLost int
	// Failed counts jobs whose last outcome was job-failed.
	Failed int
	// RecordedMakespan spans the first job start to the last completion in
	// the live run; RecordedUtilization is Eq. (1) over the same window at
	// one core per worker.
	RecordedMakespan    time.Duration
	RecordedUtilization float64
}

// traceAgg accumulates one job's events during parsing.
type traceAgg struct {
	submitAt  time.Duration
	hasSubmit bool
	startAt   time.Duration // first job-started
	hasStart  bool
	sentAt    time.Duration // first task-sent (preferred service start)
	hasSent   bool
	doneAt    time.Duration
	completed bool
	failed    bool
	procs     int
	retries   int
}

// ReplayTrace parses a dispatcher -trace JSON-lines stream. Blank lines are
// skipped; a malformed line or a line that is not a JSON object returns an
// error naming the line. Unknown event kinds and out-of-order timestamps
// are tolerated (negative intervals clamp to zero): traces from concurrent
// dispatchers interleave loosely.
func ReplayTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	jobs := make(map[string]*traceAgg)
	var order []string
	alive, peak := 0, 0
	lost := 0
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		trimmed := false
		for _, c := range raw {
			if c != ' ' && c != '\t' && c != '\r' {
				trimmed = true
				break
			}
		}
		if !trimmed {
			continue
		}
		var ev dispatch.Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("simjets: trace line %d: %w", line, err)
		}
		if ev.T < 0 {
			ev.T = 0
		}
		switch ev.Kind {
		case dispatch.EvWorkerJoined:
			alive++
			if alive > peak {
				peak = alive
			}
		case dispatch.EvWorkerLost:
			lost++
			if alive > 0 {
				alive--
			}
		case dispatch.EvJobSubmitted, dispatch.EvJobQueued, dispatch.EvJobStarted,
			dispatch.EvTaskSent, dispatch.EvTaskDone, dispatch.EvJobCompleted,
			dispatch.EvJobFailed, dispatch.EvJobRetried, dispatch.EvGroupAssembled,
			dispatch.EvPMIWired:
			if ev.JobID == "" {
				continue
			}
			a := jobs[ev.JobID]
			if a == nil {
				a = &traceAgg{}
				jobs[ev.JobID] = a
				order = append(order, ev.JobID)
			}
			switch ev.Kind {
			case dispatch.EvJobSubmitted:
				if !a.hasSubmit {
					a.submitAt = ev.T
					a.hasSubmit = true
				}
			case dispatch.EvJobStarted:
				if !a.hasStart {
					a.startAt = ev.T
					a.hasStart = true
				}
			case dispatch.EvTaskSent:
				a.procs++
				if !a.hasSent {
					a.sentAt = ev.T
					a.hasSent = true
				}
			case dispatch.EvJobCompleted:
				a.doneAt = ev.T
				a.completed = true
				a.failed = false
			case dispatch.EvJobFailed:
				a.doneAt = ev.T
				a.failed = true
			case dispatch.EvJobRetried:
				a.retries++
			}
		default:
			// Unknown kind: tolerate — newer engines may add kinds.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("simjets: trace read: %w", err)
	}

	tr := &Trace{Workers: peak, WorkersLost: lost}
	var firstStart, lastDone time.Duration
	seen := false
	var busy float64
	for _, id := range order {
		a := jobs[id]
		if a.failed && !a.completed {
			tr.Failed++
			continue
		}
		if !a.completed {
			continue // still running at trace end
		}
		start := a.submitAt
		switch {
		case a.hasSent:
			start = a.sentAt
		case a.hasStart:
			start = a.startAt
		}
		svc := a.doneAt - start
		if svc < 0 {
			svc = 0
		}
		sub := a.submitAt
		if !a.hasSubmit {
			sub = start
		}
		procs := a.procs
		if procs < 1 {
			procs = 1
		}
		tr.Jobs = append(tr.Jobs, TraceJob{
			ID: id, SubmitAt: sub, Service: svc, Procs: procs, Retries: a.retries,
		})
		if !seen || start < firstStart {
			firstStart = start
		}
		if !seen || a.doneAt > lastDone {
			lastDone = a.doneAt
		}
		seen = true
		busy += svc.Seconds() * float64(procs)
	}
	if len(tr.Jobs) == 0 {
		return nil, fmt.Errorf("simjets: trace contains no completed jobs")
	}
	tr.RecordedMakespan = lastDone - firstStart
	if tr.Workers > 0 && tr.RecordedMakespan > 0 {
		tr.RecordedUtilization = busy / (float64(tr.Workers) * tr.RecordedMakespan.Seconds())
		if tr.RecordedUtilization > 1 {
			tr.RecordedUtilization = 1
		}
	}
	return tr, nil
}

// ReplayReport compares a trace's live measurements with its re-execution
// in the simulator.
type ReplayReport struct {
	Jobs    int `json:"jobs"`
	Workers int `json:"workers"`
	// Recorded values come from the trace; Simulated from the re-execution.
	RecordedMakespan  time.Duration `json:"recorded_makespan"`
	SimulatedMakespan time.Duration `json:"simulated_makespan"`
	// MakespanError is (simulated-recorded)/recorded.
	MakespanError        float64 `json:"makespan_error"`
	RecordedUtilization  float64 `json:"recorded_utilization"`
	SimulatedUtilization float64 `json:"simulated_utilization"`
	// UtilizationError is the absolute difference.
	UtilizationError float64 `json:"utilization_error"`
	Completed        int     `json:"completed"`
	Failed           int     `json:"failed"`
}

// Run re-executes the trace on the simulated model: the same worker count
// (Breadboard x86 profile — live engines run on cluster-class hosts), jobs
// submitted at their recorded offsets with their observed service times as
// think time. Single-rank jobs take the sequential path; multi-rank jobs
// the mpiexec path.
func (tr *Trace) Run(seed int64) ReplayReport {
	sim := event.New(seed)
	nodes := tr.Workers
	if nodes < 1 {
		nodes = 1
	}
	prof := Breadboard(nodes)
	prof.NewSharedFS = nil
	// The observed service time spans first task-sent to completion in the
	// live run, so it already embeds proxy launch, wire-up, and mpiexec
	// costs; zero those in the replay profile to avoid double-charging.
	// Dispatcher service and the RTT stay — they model the queueing ahead of
	// task-sent, which the service interval does not cover.
	prof.ProxyLaunch = 0
	prof.MPIExecSpawn = 0
	prof.WireUpBase = 0
	prof.WireUpPerRank = 0
	m := NewModel(sim, prof, 1)
	// Boot everyone quickly: the live trace's clock starts with workers
	// already registering, and submit offsets below are shifted past boot.
	m.BootSpread = 10 * time.Millisecond
	m.Start()
	const shift = 20 * time.Millisecond
	// Clamp offsets and services so hand-edited or corrupt traces (huge
	// timestamps near the int64 limit) cannot overflow virtual time.
	const horizon = 365 * 24 * time.Hour
	for i := range tr.Jobs {
		tj := &tr.Jobs[i]
		procs := tj.Procs
		if procs > nodes {
			procs = nodes
		}
		at, svc := tj.SubmitAt, tj.Service
		if at > horizon {
			at = horizon
		}
		if svc > horizon {
			svc = horizon
		}
		j := &SimJob{
			ID:         tj.ID,
			NProcs:     procs,
			Think:      svc,
			Sequential: procs == 1,
		}
		sim.At(shift+at, func() { m.Submit(j) })
	}
	sim.Run(0)
	rep := ReplayReport{
		Jobs:                 len(tr.Jobs),
		Workers:              tr.Workers,
		RecordedMakespan:     tr.RecordedMakespan,
		SimulatedMakespan:    m.Span(),
		RecordedUtilization:  tr.RecordedUtilization,
		SimulatedUtilization: m.Utilization(1),
		Completed:            m.Completed,
		Failed:               m.Failed,
	}
	if rep.RecordedMakespan > 0 {
		rep.MakespanError = (rep.SimulatedMakespan - rep.RecordedMakespan).Seconds() / rep.RecordedMakespan.Seconds()
	}
	rep.UtilizationError = rep.SimulatedUtilization - rep.RecordedUtilization
	if rep.UtilizationError < 0 {
		rep.UtilizationError = -rep.UtilizationError
	}
	return rep
}

package scenario

import "time"

// Library returns the named scenarios cmd/jets-bench exposes. The 10⁴-worker
// entries are CI-sized (seconds of wall clock); million-agents is the
// flagship whose wall clock EXPERIMENTS.md documents.
func Library() []Scenario {
	return []Scenario{
		sweep10k(),
		storm10k(),
		heavyTail10k(),
		millionAgents(),
	}
}

// Lookup finds a library scenario by name.
func Lookup(name string) (Scenario, bool) {
	for _, sc := range Library() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// sweep10k is the basic 10⁴-worker Poisson sweep: short sequential tasks at
// ~70% of dispatcher-bound capacity, drained at the horizon.
func sweep10k() Scenario {
	return Scenario{
		Name:           "sweep-10k",
		Machine:        Surveyor,
		Nodes:          2500,
		WorkersPerNode: 4,
		NoSharedFS:     true,
		Duration:       30 * time.Minute,
		Drain:          true,
		Tenants: []Tenant{{
			Name:    "sweep",
			Arrival: Arrival{Kind: Poisson, Rate: 120},
			Classes: []TaskClass{{
				Name:       "short",
				Weight:     1,
				Sequential: true,
				Think:      Dist{Kind: Uniform, Value: 40 * time.Second, Spread: 40 * time.Second},
			}},
		}},
	}
}

// storm10k runs steady sequential load through two correlated rack-failure
// storms (a quarter of the racks at half strength, then a smaller second
// wave), exercising abort/reschedule at scale.
func storm10k() Scenario {
	return Scenario{
		Name:           "storm-10k",
		Machine:        Surveyor,
		Nodes:          2500,
		WorkersPerNode: 4,
		NoSharedFS:     true,
		Duration:       20 * time.Minute,
		Tenants: []Tenant{{
			Name:    "load",
			Arrival: Arrival{Kind: Poisson, Rate: 200},
			Classes: []TaskClass{{
				Name:       "fixed",
				Weight:     1,
				Sequential: true,
				Think:      Dist{Kind: Fixed, Value: 30 * time.Second},
			}},
		}},
		Storms: []Storm{
			{At: 5 * time.Minute, Racks: 16, RackSize: 156, Fraction: 0.5, Spread: 30 * time.Second},
			{At: 12 * time.Minute, Racks: 4, RackSize: 156, Fraction: 1.0, Spread: 5 * time.Second},
		},
	}
}

// heavyTail10k mixes a lognormal body, a Pareto tail, and a small MPI class
// under two tenants — one steady, one bursty — at ~75% utilization.
func heavyTail10k() Scenario {
	return Scenario{
		Name:           "heavy-tail-10k",
		Machine:        Surveyor,
		Nodes:          2500,
		WorkersPerNode: 4,
		NoSharedFS:     true,
		Duration:       30 * time.Minute,
		Drain:          true,
		Tenants: []Tenant{
			{
				Name:    "steady",
				Arrival: Arrival{Kind: Poisson, Rate: 60},
				Classes: []TaskClass{
					{
						Name:       "body",
						Weight:     0.75,
						Sequential: true,
						// exp(3.3 + 0.8²/2) ≈ 37 s mean, right-skewed.
						Think: Dist{Kind: Lognormal, Mu: 3.3, Sigma: 0.8, Max: 20 * time.Minute},
					},
					{
						Name:       "tail",
						Weight:     0.2,
						Sequential: true,
						// Power-law tail, mean ≈ 1.3·60/(0.3) = 260 s before the clamp.
						Think: Dist{Kind: Pareto, Scale: time.Minute, Alpha: 1.3, Max: time.Hour},
					},
					{
						Name:   "mpi4",
						Weight: 0.05,
						NProcs: 4,
						Think:  Dist{Kind: Fixed, Value: 2 * time.Minute},
					},
				},
			},
			{
				Name: "bursty",
				Arrival: Arrival{
					Kind: Bursty,
					Rate: 150,
					On:   Dist{Kind: Uniform, Value: time.Minute, Spread: 2 * time.Minute},
					Off:  Dist{Kind: Uniform, Value: 3 * time.Minute, Spread: 4 * time.Minute},
				},
				Classes: []TaskClass{{
					Name:       "spike",
					Weight:     1,
					Sequential: true,
					Think:      Dist{Kind: Uniform, Value: 10 * time.Second, Spread: 20 * time.Second},
				}},
			},
		},
	}
}

// millionAgents is the flagship: 10⁶ pilot workers on a scaled-out BG/P
// profile running two virtual days of mixed heavy-tailed load from two
// tenants, through a 16-rack correlated storm at the one-day mark. The
// arrival rates hold ~80% of the fleet busy (mean think ≈ 20 min →
// steady-state demand ≈ 675·1190 ≈ 8·10⁵ busy workers), so the run
// sustains roughly 7,000 events per virtual second for ~1.2·10⁹ events
// total. EXPERIMENTS.md records the measured wall clock.
func millionAgents() Scenario {
	return Scenario{
		Name:           "million-agents",
		Machine:        Surveyor,
		Nodes:          250_000,
		WorkersPerNode: 4,
		NoSharedFS:     true,
		BootSpread:     5 * time.Minute,
		Duration:       48 * time.Hour,
		Tenants: []Tenant{
			{
				Name:    "campaign",
				Arrival: Arrival{Kind: Poisson, Rate: 600},
				Classes: []TaskClass{
					{
						Name:       "body",
						Weight:     0.8,
						Sequential: true,
						// exp(6.6 + 1.0²/2) ≈ 22 min mean.
						Think: Dist{Kind: Lognormal, Mu: 6.6, Sigma: 1.0, Max: 6 * time.Hour},
					},
					{
						Name:       "tail",
						Weight:     0.2,
						Sequential: true,
						Think:      Dist{Kind: Pareto, Scale: 5 * time.Minute, Alpha: 1.4, Max: 12 * time.Hour},
					},
				},
			},
			{
				Name: "interactive",
				Arrival: Arrival{
					Kind: Bursty,
					Rate: 300,
					On:   Dist{Kind: Uniform, Value: 10 * time.Minute, Spread: 20 * time.Minute},
					Off:  Dist{Kind: Uniform, Value: 30 * time.Minute, Spread: time.Hour},
				},
				Classes: []TaskClass{{
					Name:       "quick",
					Weight:     1,
					Sequential: true,
					Think:      Dist{Kind: Uniform, Value: time.Minute, Spread: 4 * time.Minute},
				}},
			},
		},
		Storms: []Storm{
			// 16 racks of 4,096 workers — 6.5% of the fleet — lost over a
			// minute at hour 24.
			{At: 24 * time.Hour, Racks: 16, RackSize: 4096, Fraction: 1.0, Spread: time.Minute},
		},
	}
}

package scenario

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"time"
)

// smokeLibrary returns the CI-sized library entries (the flagship is run
// manually; see EXPERIMENTS.md).
func smokeLibrary(t *testing.T) []Scenario {
	t.Helper()
	var out []Scenario
	for _, sc := range Library() {
		if sc.Nodes*sc.WorkersPerNode <= 10_000 {
			out = append(out, sc)
		}
	}
	if len(out) < 3 {
		t.Fatalf("library has %d smoke scenarios, want >= 3", len(out))
	}
	return out
}

// TestDeterminism runs every smoke scenario twice under the same seed and
// requires the JSON-encoded results to be byte-identical; a different seed
// must produce a different outcome.
func TestDeterminism(t *testing.T) {
	for _, sc := range smokeLibrary(t) {
		a, err := json.Marshal(Run(sc, 42))
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(Run(sc, 42))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: same-seed runs differ:\n%s\n%s", sc.Name, a, b)
		}
		c, err := json.Marshal(Run(sc, 43))
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(a, c) {
			t.Errorf("%s: seeds 42 and 43 produced identical results — rng not wired through", sc.Name)
		}
	}
}

// TestSweepSmoke checks the basic sweep completes its offered load at sane
// utilization and conserves jobs.
func TestSweepSmoke(t *testing.T) {
	res := Run(sweep10k(), 7)
	if res.Workers != 10_000 {
		t.Fatalf("workers = %d, want 10000", res.Workers)
	}
	if res.Submitted == 0 || res.Completed == 0 {
		t.Fatalf("no work ran: %+v", res)
	}
	if got := res.Completed + res.Failed + res.QueuedAtEnd + res.RunningAtEnd; got != res.Submitted {
		t.Fatalf("job conservation: %d accounted of %d submitted", got, res.Submitted)
	}
	// Drained sweep: everything completes, nothing fails.
	if res.Failed != 0 || res.QueuedAtEnd != 0 || res.RunningAtEnd != 0 {
		t.Fatalf("drained sweep left failed=%d queued=%d running=%d", res.Failed, res.QueuedAtEnd, res.RunningAtEnd)
	}
	if res.Utilization <= 0.3 || res.Utilization > 1 {
		t.Fatalf("utilization = %.3f, want (0.3, 1]", res.Utilization)
	}
}

// TestStormKillsAndRecovers checks the correlated storm actually removes
// workers, aborts in-flight jobs, and that the survivors keep completing
// work afterwards.
func TestStormKillsAndRecovers(t *testing.T) {
	sc := storm10k()
	res := Run(sc, 11)
	if res.Killed == 0 {
		t.Fatal("storm killed nobody")
	}
	if res.AliveAtEnd != res.Workers-res.Killed {
		t.Fatalf("alive=%d killed=%d workers=%d: mismatch", res.AliveAtEnd, res.Killed, res.Workers)
	}
	// Expected kills: 16 racks x 156 x 0.5 (binomial) + 4 racks x 156.
	if res.Killed < 1500 || res.Killed > 2100 {
		t.Fatalf("killed = %d, want ~1872", res.Killed)
	}
	if res.Failed == 0 {
		t.Fatal("no in-flight jobs were aborted by the storm")
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	// Load (200/s x 30s = 6000 busy) fits the post-storm fleet (~8100), so
	// the queue must not be growing without bound at the horizon.
	if res.QueuedAtEnd > res.Workers {
		t.Fatalf("queue backed up: %d at end", res.QueuedAtEnd)
	}
}

// TestHeavyTailMix checks the mixed scenario exercises both tenants and
// that job conservation holds through the drain.
func TestHeavyTailMix(t *testing.T) {
	res := Run(heavyTail10k(), 3)
	if res.Completed == 0 || res.Failed != 0 {
		t.Fatalf("completed=%d failed=%d", res.Completed, res.Failed)
	}
	if got := res.Completed + res.QueuedAtEnd + res.RunningAtEnd; got != res.Submitted {
		t.Fatalf("job conservation: %d accounted of %d submitted", got, res.Submitted)
	}
	if res.QueuedAtEnd != 0 || res.RunningAtEnd != 0 {
		t.Fatalf("drain left queued=%d running=%d", res.QueuedAtEnd, res.RunningAtEnd)
	}
}

// TestDistSample pins the distribution families' shapes.
func TestDistSample(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 20000

	mean := func(d Dist) float64 {
		var sum float64
		for i := 0; i < n; i++ {
			sum += d.Sample(rng).Seconds()
		}
		return sum / n
	}

	if got := mean(Dist{Kind: Fixed, Value: 5 * time.Second}); got != 5 {
		t.Fatalf("fixed mean = %v, want 5", got)
	}
	if got := mean(Dist{Kind: Uniform, Value: 4 * time.Second, Spread: 2 * time.Second}); math.Abs(got-5) > 0.1 {
		t.Fatalf("uniform mean = %v, want ~5", got)
	}
	// Lognormal mean = exp(mu + sigma²/2) = exp(1 + 0.125) ≈ 3.08.
	if got := mean(Dist{Kind: Lognormal, Mu: 1, Sigma: 0.5}); math.Abs(got-3.08) > 0.2 {
		t.Fatalf("lognormal mean = %v, want ~3.08", got)
	}
	// Pareto(scale=1s, alpha=2) mean = alpha/(alpha-1) = 2.
	if got := mean(Dist{Kind: Pareto, Scale: time.Second, Alpha: 2}); math.Abs(got-2) > 0.3 {
		t.Fatalf("pareto mean = %v, want ~2", got)
	}
	// Truncation clamps.
	d := Dist{Kind: Pareto, Scale: time.Second, Alpha: 1.1, Min: 2 * time.Second, Max: 10 * time.Second}
	for i := 0; i < 1000; i++ {
		v := d.Sample(rng)
		if v < 2*time.Second || v > 10*time.Second {
			t.Fatalf("truncated sample %v outside [2s, 10s]", v)
		}
	}
	// A heavy tail is actually heavy: max sample far above the median.
	tail := Dist{Kind: Pareto, Scale: time.Second, Alpha: 1.2}
	var max time.Duration
	for i := 0; i < n; i++ {
		if v := tail.Sample(rng); v > max {
			max = v
		}
	}
	if max < 30*time.Second {
		t.Fatalf("pareto(1.2) max of %d samples = %v — tail too light", n, max)
	}
}

// TestBurstyGating checks a bursty tenant submits during on-phases only:
// with an off-heavy duty cycle the submitted count lands well below the
// always-on Poisson volume.
func TestBurstyGating(t *testing.T) {
	base := Scenario{
		Name:           "bursty-gate",
		Machine:        Surveyor,
		Nodes:          250,
		WorkersPerNode: 4,
		NoSharedFS:     true,
		Duration:       20 * time.Minute,
		Tenants: []Tenant{{
			Name: "b",
			Arrival: Arrival{
				Kind: Bursty,
				Rate: 50,
				On:   Dist{Kind: Fixed, Value: time.Minute},
				Off:  Dist{Kind: Fixed, Value: 4 * time.Minute},
			},
			Classes: []TaskClass{{
				Name: "t", Weight: 1, Sequential: true,
				Think: Dist{Kind: Fixed, Value: 2 * time.Second},
			}},
		}},
	}
	res := Run(base, 5)
	alwaysOn := 50.0 * base.Duration.Seconds()
	// 20% duty cycle: expect ~0.2x the always-on volume, generously bounded.
	if res.Submitted == 0 || float64(res.Submitted) > 0.35*alwaysOn {
		t.Fatalf("bursty submitted %d of always-on %v — off-phases not gating", res.Submitted, alwaysOn)
	}
	if float64(res.Submitted) < 0.08*alwaysOn {
		t.Fatalf("bursty submitted %d — on-phases not arriving at rate", res.Submitted)
	}
}

// TestRecordLimitBounded checks the default record cap holds on a run with
// far more jobs than the cap.
func TestRecordLimitBounded(t *testing.T) {
	res, m := RunModel(sweep10k(), 9)
	if res.Completed <= 4096 {
		t.Skipf("scenario too small to exercise the cap: %d jobs", res.Completed)
	}
	if len(m.AllRecords) > 4096 || len(m.Records) > 4096 {
		t.Fatalf("record cap breached: all=%d completed=%d", len(m.AllRecords), len(m.Records))
	}
	// Aggregates stay exact past the cap.
	if res.Makespan <= 0 || res.Utilization <= 0 {
		t.Fatalf("aggregates lost under cap: %+v", res)
	}
}

// Package scenario layers a declarative workload-generation language over
// the simjets model: heavy-tailed task mixes, multi-tenant arrival
// processes, and correlated failure storms compose into a Scenario value
// that runs deterministically under a seed. The library (library.go) holds
// the named sweeps cmd/jets-bench exposes, up to the million-worker
// flagship.
//
// Everything is generated incrementally inside the simulation: each arrival
// schedules the next, completed jobs recycle through a free pool, and the
// model's series decimate — so a multi-virtual-day, million-worker run
// holds steady-state memory, not per-job memory.
package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"jets/internal/event"
	"jets/internal/simjets"
)

// ---------------------------------------------------------------------------
// Distributions.

// DistKind selects a duration distribution family.
type DistKind string

const (
	// Fixed always returns Value.
	Fixed DistKind = "fixed"
	// Uniform draws from [Value, Value+Spread).
	Uniform DistKind = "uniform"
	// Lognormal draws exp(N(Mu, Sigma²)) seconds: the heavy-but-thin tail of
	// application wall times (the paper's NAMD segments are near-lognormal).
	Lognormal DistKind = "lognormal"
	// Pareto draws Scale/U^(1/Alpha): the power-law tail of trace-derived
	// task-duration mixes. Alpha <= 1 has infinite mean — clamp with Max.
	Pareto DistKind = "pareto"
)

// Dist is a declarative duration distribution.
type Dist struct {
	Kind DistKind `json:"kind"`
	// Value is the fixed duration, or the uniform lower bound.
	Value time.Duration `json:"value,omitempty"`
	// Spread is the uniform width.
	Spread time.Duration `json:"spread,omitempty"`
	// Mu and Sigma parameterize Lognormal in log-seconds.
	Mu    float64 `json:"mu,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`
	// Scale and Alpha parameterize Pareto; Scale is the minimum.
	Scale time.Duration `json:"scale,omitempty"`
	Alpha float64       `json:"alpha,omitempty"`
	// Min and Max truncate any family when nonzero.
	Min time.Duration `json:"min,omitempty"`
	Max time.Duration `json:"max,omitempty"`
}

// Sample draws one duration.
func (d Dist) Sample(rng *rand.Rand) time.Duration {
	var v time.Duration
	switch d.Kind {
	case Fixed, "":
		v = d.Value
	case Uniform:
		v = d.Value
		if d.Spread > 0 {
			v += time.Duration(rng.Int63n(int64(d.Spread)))
		}
	case Lognormal:
		v = time.Duration(math.Exp(d.Mu+d.Sigma*rng.NormFloat64()) * float64(time.Second))
	case Pareto:
		alpha := d.Alpha
		if alpha <= 0 {
			alpha = 1
		}
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		v = time.Duration(float64(d.Scale) / math.Pow(u, 1/alpha))
	default:
		panic(fmt.Sprintf("scenario: unknown dist kind %q", d.Kind))
	}
	if d.Min > 0 && v < d.Min {
		v = d.Min
	}
	if d.Max > 0 && v > d.Max {
		v = d.Max
	}
	if v < 0 {
		v = 0
	}
	return v
}

// ---------------------------------------------------------------------------
// Task classes and tenants.

// TaskClass is one kind of job a tenant submits, drawn by Weight.
type TaskClass struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
	Think  Dist    `json:"think"`
	// NProcs/PPN/Sequential mirror simjets.SimJob; NProcs defaults to 1.
	NProcs     int  `json:"nprocs,omitempty"`
	PPN        int  `json:"ppn,omitempty"`
	Sequential bool `json:"sequential,omitempty"`
	// I/O volumes per job (need a profile with a shared FS to take effect).
	ReadBytes    int  `json:"read_bytes,omitempty"`
	WriteBytes   int  `json:"write_bytes,omitempty"`
	MetaOps      int  `json:"meta_ops,omitempty"`
	SwiftManaged bool `json:"swift_managed,omitempty"`
}

// ArrivalKind selects a tenant's arrival process.
type ArrivalKind string

const (
	// Poisson arrivals: exponential interarrivals at Rate jobs/sec.
	Poisson ArrivalKind = "poisson"
	// Bursty arrivals: alternating on/off phases (durations drawn from On and
	// Off); during on-phases jobs arrive Poisson at Rate.
	Bursty ArrivalKind = "bursty"
	// Batch submits MaxJobs all at once at the tenant's Start time — the
	// paper's queue-everything-up-front experiments.
	Batch ArrivalKind = "batch"
)

// Arrival is a declarative arrival process.
type Arrival struct {
	Kind ArrivalKind `json:"kind"`
	// Rate is jobs/sec (Poisson and Bursty on-phases).
	Rate float64 `json:"rate,omitempty"`
	On   Dist    `json:"on,omitempty"`
	Off  Dist    `json:"off,omitempty"`
}

// Tenant is one workload stream multiplexed onto the machine.
type Tenant struct {
	Name    string      `json:"name"`
	Arrival Arrival     `json:"arrival"`
	Classes []TaskClass `json:"classes"`
	// Start delays the tenant's first activity.
	Start time.Duration `json:"start,omitempty"`
	// MaxJobs caps the tenant's submissions; 0 means unbounded (the stream
	// stops at the scenario Duration). Batch tenants require MaxJobs.
	MaxJobs int `json:"max_jobs,omitempty"`
}

// ---------------------------------------------------------------------------
// Failure storms.

// Storm is a correlated failure burst: Racks contiguous blocks of RackSize
// workers each are selected at random at time At, and Fraction of each
// block's workers are killed, the kills spread uniformly across Spread
// (all at once when zero). This reproduces rack-level power or switch loss
// rather than the independent kills of Fig. 10.
type Storm struct {
	At       time.Duration `json:"at"`
	Racks    int           `json:"racks"`
	RackSize int           `json:"rack_size"`
	Fraction float64       `json:"fraction"`
	Spread   time.Duration `json:"spread,omitempty"`
}

// ---------------------------------------------------------------------------
// Scenario.

// Machine names a calibrated profile from the simjets package.
type Machine string

const (
	Surveyor   Machine = "surveyor"
	Breadboard Machine = "breadboard"
	Eureka     Machine = "eureka"
)

func (m Machine) profile(nodes int) simjets.Profile {
	switch m {
	case Surveyor, "":
		return simjets.Surveyor(nodes)
	case Breadboard:
		return simjets.Breadboard(nodes)
	case Eureka:
		return simjets.Eureka(nodes)
	}
	panic(fmt.Sprintf("scenario: unknown machine %q", m))
}

// Scenario is a complete declarative experiment.
type Scenario struct {
	Name    string  `json:"name"`
	Machine Machine `json:"machine"`
	Nodes   int     `json:"nodes"`
	// WorkersPerNode defaults to 1.
	WorkersPerNode int `json:"workers_per_node,omitempty"`
	// NoSharedFS strips the profile's filesystem model (I/O volumes in task
	// classes then cost nothing) — for scales where the FS model's per-job
	// closures would dominate.
	NoSharedFS bool `json:"no_shared_fs,omitempty"`
	// BootSpread staggers worker boot; zero keeps the model default (1s).
	BootSpread time.Duration `json:"boot_spread,omitempty"`
	// Duration is the virtual time horizon: open-ended tenants stop
	// submitting at it. Zero runs until all bounded tenants drain.
	Duration time.Duration `json:"duration"`
	// Drain, when set, keeps simulating past Duration until in-flight and
	// queued jobs finish; otherwise the run cuts off at Duration.
	Drain   bool     `json:"drain,omitempty"`
	Tenants []Tenant `json:"tenants"`
	Storms  []Storm  `json:"storms,omitempty"`
	// RecordLimit bounds per-job records (default 4096, -1 unbounded);
	// SeriesCap bounds series points (0 keeps the model default).
	RecordLimit int `json:"record_limit,omitempty"`
	SeriesCap   int `json:"series_cap,omitempty"`
}

// Result is the deterministic outcome of a run: byte-identical JSON across
// runs with the same scenario and seed.
type Result struct {
	Scenario  string `json:"scenario"`
	Seed      int64  `json:"seed"`
	Workers   int    `json:"workers"`
	Submitted int    `json:"submitted"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
	// QueuedAtEnd and RunningAtEnd report work cut off at the horizon.
	QueuedAtEnd  int `json:"queued_at_end"`
	RunningAtEnd int `json:"running_at_end"`
	AliveAtEnd   int `json:"alive_at_end"`
	Killed       int `json:"killed"`
	// Makespan is first job start to last job stop (completed jobs).
	Makespan time.Duration `json:"makespan"`
	// Utilization is Eq. (1) at one core per worker.
	Utilization float64 `json:"utilization"`
	// VirtualEnd is the simulator clock at return; Events the count fired.
	VirtualEnd time.Duration `json:"virtual_end"`
	Events     uint64        `json:"events"`
	// Wall is the host wall-clock of the run, excluded from the JSON
	// encoding so result dumps stay deterministic.
	Wall time.Duration `json:"-"`
}

// Run executes the scenario under the seed. The same (scenario, seed) pair
// yields an identical Result (and identical internal event order) on every
// run: all randomness flows from two seeded PRNGs in a single-threaded
// event loop.
func Run(sc Scenario, seed int64) Result {
	res, _ := RunModel(sc, seed)
	return res
}

// RunModel is Run exposing the model for callers that need the records or
// series (tests, jets-bench table output).
func RunModel(sc Scenario, seed int64) (Result, *simjets.Model) {
	start := time.Now()
	sim := event.New(seed)
	prof := sc.Machine.profile(sc.Nodes)
	if sc.NoSharedFS {
		prof.NewSharedFS = nil
	}
	wpn := sc.WorkersPerNode
	if wpn < 1 {
		wpn = 1
	}
	m := simjets.NewModel(sim, prof, wpn)
	if sc.BootSpread > 0 {
		m.BootSpread = sc.BootSpread
	}
	switch {
	case sc.RecordLimit > 0:
		m.RecordLimit = sc.RecordLimit
	case sc.RecordLimit == 0:
		m.RecordLimit = 4096
	}
	if sc.SeriesCap > 0 {
		m.SeriesCap = sc.SeriesCap
	}
	// The generator rng is distinct from the simulator's (which drives boot
	// skew and any model-internal randomness) so scenario sampling does not
	// perturb model behavior for a given seed.
	r := &runner{
		sc:     &sc,
		sim:    sim,
		m:      m,
		rng:    rand.New(rand.NewSource(seed ^ 0x5ca1ab1e)),
		counts: make([]int, len(sc.Tenants)),
		stopAt: 1<<63 - 1,
	}
	if sc.Duration > 0 {
		r.stopAt = sc.Duration
	}
	m.Start()
	for ti := range sc.Tenants {
		r.startTenant(ti)
	}
	for _, st := range sc.Storms {
		storm := st
		sim.At(storm.At, func() { r.fireStorm(storm) })
	}
	if sc.Duration > 0 {
		sim.RunUntil(sc.Duration)
		if sc.Drain {
			sim.Run(0)
		}
	} else {
		sim.Run(0)
	}
	return Result{
		Scenario:     sc.Name,
		Seed:         seed,
		Workers:      m.Workers(),
		Submitted:    r.submitted,
		Completed:    m.Completed,
		Failed:       m.Failed,
		QueuedAtEnd:  m.QueueLen(),
		RunningAtEnd: m.RunningJobs(),
		AliveAtEnd:   m.AliveWorkers(),
		Killed:       r.killed,
		Makespan:     m.Span(),
		Utilization:  m.Utilization(1),
		VirtualEnd:   sim.Now(),
		Events:       sim.Events(),
		Wall:         time.Since(start),
	}, m
}

// runner carries the per-run generation state.
type runner struct {
	sc  *Scenario
	sim *event.Sim
	m   *simjets.Model
	rng *rand.Rand
	// free recycles completed jobs (only successful completions are safe to
	// reuse; aborted jobs may still be referenced by in-flight events).
	free []*simjets.SimJob
	// counts is submissions per tenant index.
	counts    []int
	submitted int
	killed    int
	stopAt    time.Duration
	jobSeq    int
}

// startTenant schedules the tenant's first activity.
func (r *runner) startTenant(ti int) {
	t := &r.sc.Tenants[ti]
	switch t.Arrival.Kind {
	case Batch:
		r.sim.At(t.Start, func() {
			for i := 0; i < t.MaxJobs; i++ {
				r.submit(t, ti)
			}
		})
	case Bursty:
		r.sim.At(t.Start, func() { r.burstOn(t, ti) })
	case Poisson, "":
		r.sim.At(t.Start, func() { r.nextArrival(t, ti) })
	default:
		panic(fmt.Sprintf("scenario: unknown arrival kind %q", t.Arrival.Kind))
	}
}

func (r *runner) tenantDone(t *Tenant, ti int) bool {
	return t.MaxJobs > 0 && r.counts[ti] >= t.MaxJobs
}

// nextArrival submits one job and schedules the following arrival —
// incremental generation, one pending event per tenant.
func (r *runner) nextArrival(t *Tenant, ti int) {
	if r.sim.Now() >= r.stopAt || r.tenantDone(t, ti) {
		return
	}
	r.submit(t, ti)
	if r.tenantDone(t, ti) {
		return
	}
	r.sim.After(expInterarrival(r.rng, t.Arrival.Rate), func() { r.nextArrival(t, ti) })
}

// burstOn runs one on-phase: Poisson arrivals at Rate for a drawn duration,
// then an off-phase of drawn duration, then the next cycle.
func (r *runner) burstOn(t *Tenant, ti int) {
	if r.sim.Now() >= r.stopAt || r.tenantDone(t, ti) {
		return
	}
	on := t.Arrival.On.Sample(r.rng)
	phaseEnd := r.sim.Now() + on
	var arrive func()
	arrive = func() {
		if r.sim.Now() >= r.stopAt || r.sim.Now() >= phaseEnd || r.tenantDone(t, ti) {
			return
		}
		r.submit(t, ti)
		r.sim.After(expInterarrival(r.rng, t.Arrival.Rate), arrive)
	}
	arrive()
	off := t.Arrival.Off.Sample(r.rng)
	r.sim.After(on+off, func() { r.burstOn(t, ti) })
}

func expInterarrival(rng *rand.Rand, rate float64) time.Duration {
	if rate <= 0 {
		return time.Hour // effectively idle
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return time.Duration(-math.Log(u) / rate * float64(time.Second))
}

// pickClass draws a task class by weight.
func (r *runner) pickClass(t *Tenant) *TaskClass {
	if len(t.Classes) == 1 {
		return &t.Classes[0]
	}
	total := 0.0
	for i := range t.Classes {
		total += t.Classes[i].Weight
	}
	x := r.rng.Float64() * total
	for i := range t.Classes {
		x -= t.Classes[i].Weight
		if x < 0 {
			return &t.Classes[i]
		}
	}
	return &t.Classes[len(t.Classes)-1]
}

// submit draws a class, builds (or recycles) a job, and submits it.
func (r *runner) submit(t *Tenant, ti int) {
	c := r.pickClass(t)
	var j *simjets.SimJob
	if n := len(r.free); n > 0 {
		j = r.free[n-1]
		r.free = r.free[:n-1]
	} else {
		j = &simjets.SimJob{}
	}
	r.jobSeq++
	j.ID = fmt.Sprintf("%s-%d", t.Name, r.jobSeq)
	j.NProcs = c.NProcs
	if j.NProcs < 1 {
		j.NProcs = 1
	}
	j.PPN = c.PPN
	j.Sequential = c.Sequential
	j.Think = c.Think.Sample(r.rng)
	j.ReadBytes = c.ReadBytes
	j.WriteBytes = c.WriteBytes
	j.MetaOps = c.MetaOps
	j.SwiftManaged = c.SwiftManaged
	j.OnDone = func(done *simjets.SimJob, failed bool) {
		if !failed {
			done.Reset()
			r.free = append(r.free, done)
		}
	}
	r.submitted++
	r.counts[ti]++
	r.m.Submit(j)
}

// fireStorm selects the racks and schedules the kills.
func (r *runner) fireStorm(st Storm) {
	w := r.m.Workers()
	size := st.RackSize
	if size < 1 {
		size = 1
	}
	nracks := (w + size - 1) / size
	picked := r.rng.Perm(nracks)
	if st.Racks > 0 && st.Racks < len(picked) {
		picked = picked[:st.Racks]
	}
	frac := st.Fraction
	if frac <= 0 || frac > 1 {
		frac = 1
	}
	for _, rack := range picked {
		lo := rack * size
		hi := lo + size
		if hi > w {
			hi = w
		}
		for wi := lo; wi < hi; wi++ {
			if frac < 1 && r.rng.Float64() >= frac {
				continue
			}
			victim := wi
			delay := time.Duration(0)
			if st.Spread > 0 {
				delay = time.Duration(r.rng.Int63n(int64(st.Spread)))
			}
			r.sim.After(delay, func() { r.kill(victim) })
		}
	}
}

// kill terminates one worker, counting only kills that land on a live one.
func (r *runner) kill(w int) {
	before := r.m.AliveWorkers()
	r.m.KillWorker(w)
	if r.m.AliveWorkers() < before {
		r.killed++
	}
}

// Package simjets runs the JETS scheduling architecture inside the
// discrete-event simulator at the paper's scales (Blue Gene/P racks,
// multi-hour batches) and beyond them (million-worker scenario sweeps). The
// model reproduces the pipeline of Fig. 4: pilot workers request work from a
// central dispatcher (a queueing station whose service time bounds the task
// rate), MPI jobs fork an mpiexec on the login node, proxies are dispatched
// and launched per rank, PMI wire-up couples the processes, the application
// runs (with optional shared-filesystem I/O), and completions free the
// workers back into the FIFO idle pool.
//
// The sequential-task hot path schedules through the event core's
// Handler/arg callbacks (no closure allocations in steady state), worker
// bookkeeping is O(1) per operation (ring-buffer idle pool with lazy
// dead-entry skipping, swap-remove live set for random kills), and the
// per-event series samples decimate to a bounded resolution — together these
// hold a 10⁶-worker, multi-virtual-day run to minutes of wall clock and flat
// memory.
package simjets

import (
	"fmt"
	"time"

	"jets/internal/event"
	"jets/internal/fsim"
	"jets/internal/metrics"
)

// SimJob is one application invocation in the model.
type SimJob struct {
	ID     string
	NProcs int // worker (node) count; 1 with Sequential
	PPN    int // processes per node (>=1); total MPI size = NProcs*PPN
	Think  time.Duration
	// Sequential bypasses the mpiexec/wire-up path (Falkon-style mode).
	Sequential bool

	// Shared-FS I/O performed by the job (zero values skip the phase):
	// ReadBytes before Think, WriteBytes after, MetaOps opens spread across
	// both, and one binary read of Profile.BinaryBytes per process when the
	// profile places binaries on the shared FS.
	ReadBytes  int
	WriteBytes int
	MetaOps    int

	// SwiftManaged applies the profile's Swift/Coasters per-task overhead
	// before dispatch (§6.2 experiments).
	SwiftManaged bool

	// OnDone, if set, runs when the job completes or aborts.
	OnDone func(j *SimJob, failed bool)

	group   []int
	start   time.Duration
	started bool
	done    bool
	aborted bool
	ready   int
	// slot is the model's packed gen<<32|index handle while a sequential
	// job's launch chain is in flight; 0 means none.
	slot int
}

func (j *SimJob) procs() int {
	ppn := j.PPN
	if ppn < 1 {
		ppn = 1
	}
	return j.NProcs * ppn
}

// Reset clears a completed job's bookkeeping so the struct (and its group
// slice) can be reused for a new submission. Reusing jobs is only safe after
// a successful completion: an aborted job may still be referenced by
// in-flight launch events.
func (j *SimJob) Reset() {
	j.ID = ""
	j.NProcs = 0
	j.PPN = 0
	j.Think = 0
	j.Sequential = false
	j.ReadBytes = 0
	j.WriteBytes = 0
	j.MetaOps = 0
	j.SwiftManaged = false
	j.OnDone = nil
	j.group = j.group[:0]
	j.start = 0
	j.started = false
	j.done = false
	j.aborted = false
	j.ready = 0
	j.slot = 0
}

// Model is one simulated JETS deployment.
type Model struct {
	Sim  *event.Sim
	Prof Profile
	FS   *fsim.SharedFS

	dispatch *event.Station
	login    *event.Station
	// swift serializes Swift/Coasters task processing (the engine is a
	// single JVM pipeline); only SwiftManaged jobs pass through it.
	swift *event.Station

	workers int
	alive   []bool
	busy    []*SimJob
	// idle is the FIFO idle pool. Entries for workers killed while idle are
	// skipped lazily on pop (each stale entry costs O(1) exactly once);
	// idleLive counts the live entries and inIdle flags membership.
	idle     event.Ring[int32]
	idleLive int
	inIdle   []bool
	queue    event.Ring[*SimJob]

	// live/livePos index the alive workers for O(1) random selection:
	// livePos[w] is w's position in live, maintained by swap-remove.
	live    []int32
	livePos []int32

	// Sequential in-flight jobs are addressed by slot so launch-chain events
	// carry an int instead of a closure; slotGen detects stale events for
	// recycled slots (the packed handle is gen<<32|index).
	slotJob  []*SimJob
	slotGen  []uint32
	slotFree event.Ring[int32]

	// Records holds completed jobs; AllRecords additionally includes
	// aborted jobs with their abort time as Stop. RecordLimit (when >0)
	// stops appending to both past that many entries — aggregate results
	// (Completed, Failed, Span, Utilization) stay exact regardless.
	Records     []metrics.JobRecord
	AllRecords  []metrics.JobRecord
	RecordLimit int
	Completed   int
	Failed      int
	// usefulProcSec accumulates Think x procs over completed jobs — the
	// numerator of Eq. (1), which counts only application time as useful.
	usefulProcSec float64

	// Incremental span bounds over completed jobs.
	firstStart, lastStop time.Duration
	spanSeen             bool

	aliveCount  int
	runningJobs int
	AliveSeries metrics.Series
	RunSeries   metrics.Series
	// SeriesCap bounds AliveSeries/RunSeries to about this many points by
	// decimating to a coarser resolution (see seriesRec); 0 keeps every
	// sample. Set before Start.
	SeriesCap int
	aliveRec  seriesRec
	runRec    seriesRec

	// BootSpread staggers worker arrival at start (allocation boot skew).
	BootSpread time.Duration

	// Handler stubs for the allocation-free scheduling paths; scheduled as
	// pointers to these fields so no interface boxing allocates.
	hBoot       bootH
	hReqNet     reqNetH
	hIdleArrive idleArriveH
	hSeqSent    seqSentH
	hSeqLaunch  seqLaunchH
	hThinkDone  thinkDoneH
	hNop        nopH
}

// defaultSeriesCap keeps every sample for paper-scale runs (they produce a
// few thousand points) while bounding the million-worker sweeps.
const defaultSeriesCap = 65536

// NewModel builds a model with workersPerNode pilot agents per node.
func NewModel(sim *event.Sim, prof Profile, workersPerNode int) *Model {
	if workersPerNode < 1 {
		workersPerNode = 1
	}
	m := &Model{
		Sim:        sim,
		Prof:       prof,
		dispatch:   event.NewStation(sim, 1),
		login:      event.NewStation(sim, prof.LoginCores),
		swift:      event.NewStation(sim, 1),
		workers:    prof.Nodes * workersPerNode,
		BootSpread: time.Second,
		SeriesCap:  defaultSeriesCap,
	}
	if prof.NewSharedFS != nil {
		m.FS = prof.NewSharedFS(sim)
	}
	m.alive = make([]bool, m.workers)
	m.busy = make([]*SimJob, m.workers)
	m.inIdle = make([]bool, m.workers)
	m.live = make([]int32, 0, m.workers)
	m.livePos = make([]int32, m.workers)
	for i := range m.livePos {
		m.livePos[i] = -1
	}
	m.hBoot.m = m
	m.hReqNet.m = m
	m.hIdleArrive.m = m
	m.hSeqSent.m = m
	m.hSeqLaunch.m = m
	m.hThinkDone.m = m
	return m
}

// Workers reports the worker count.
func (m *Model) Workers() int { return m.workers }

// Start boots the workers: each registers and requests work after a
// uniformly random boot skew.
func (m *Model) Start() {
	m.aliveRec.cap = m.SeriesCap
	m.runRec.cap = m.SeriesCap
	for w := 0; w < m.workers; w++ {
		delay := time.Duration(0)
		if m.BootSpread > 0 {
			delay = time.Duration(m.Sim.Rand().Int63n(int64(m.BootSpread)))
		}
		m.Sim.AfterCall(delay, &m.hBoot, w)
	}
}

type bootH struct{ m *Model }

func (h *bootH) Fire(w int) {
	m := h.m
	m.alive[w] = true
	m.livePos[w] = int32(len(m.live))
	m.live = append(m.live, int32(w))
	m.aliveCount++
	m.sampleAlive()
	m.requestWork(w)
}

func (m *Model) sampleAlive() {
	m.aliveRec.sample(&m.AliveSeries, m.Sim.Now(), float64(m.aliveCount))
}

func (m *Model) sampleRunning() {
	m.runRec.sample(&m.RunSeries, m.Sim.Now(), float64(m.runningJobs))
}

// Submit queues a job (optionally after the Swift/Coasters stage).
func (m *Model) Submit(j *SimJob) {
	if j.NProcs < 1 {
		panic(fmt.Sprintf("simjets: job %s has %d procs", j.ID, j.NProcs))
	}
	if j.SwiftManaged && m.Prof.SwiftOverhead > 0 {
		m.swift.Request(m.Prof.SwiftOverhead, func() {
			m.queue.Push(j)
			m.trySchedule()
		})
		return
	}
	m.queue.Push(j)
	m.trySchedule()
}

// requestWork models the worker's work-request message: one dispatcher
// service, after which the worker sits in the FIFO idle pool.
func (m *Model) requestWork(w int) {
	m.Sim.AfterCall(m.Prof.RTT/2, &m.hReqNet, w)
}

// reqNetH delivers the worker's work request to the dispatcher.
type reqNetH struct{ m *Model }

func (h *reqNetH) Fire(w int) {
	h.m.dispatch.RequestCall(h.m.Prof.DispatchService, &h.m.hIdleArrive, w)
}

// idleArriveH parks the worker in the idle pool once the dispatcher has
// processed its work request.
type idleArriveH struct{ m *Model }

func (h *idleArriveH) Fire(w int) {
	m := h.m
	if !m.alive[w] {
		return
	}
	m.idle.Push(int32(w))
	m.inIdle[w] = true
	m.idleLive++
	m.trySchedule()
}

// popIdle removes and returns the oldest live idle worker, discarding stale
// entries for workers killed while parked. The caller must know a live entry
// exists (idleLive > 0).
func (m *Model) popIdle() int {
	for {
		w := int(m.idle.Pop())
		if m.inIdle[w] {
			m.inIdle[w] = false
			m.idleLive--
			return w
		}
	}
}

// trySchedule launches queued jobs FIFO while the head fits the idle pool.
func (m *Model) trySchedule() {
	for m.queue.Len() > 0 && (*m.queue.Front()).NProcs <= m.idleLive {
		j := m.queue.Pop()
		group := j.group[:0]
		for k := 0; k < j.NProcs; k++ {
			group = append(group, m.popIdle())
		}
		m.launch(j, group)
	}
}

// newSlot registers j as an in-flight sequential job and returns its packed
// handle (gen<<32|index, generation >= 1 so a valid handle is never 0).
func (m *Model) newSlot(j *SimJob) int {
	var slot int32
	if m.slotFree.Len() > 0 {
		slot = m.slotFree.Pop()
	} else {
		m.slotJob = append(m.slotJob, nil)
		m.slotGen = append(m.slotGen, 0)
		slot = int32(len(m.slotJob) - 1)
	}
	m.slotGen[slot]++
	m.slotJob[slot] = j
	return int(uint64(m.slotGen[slot])<<32 | uint64(uint32(slot)))
}

// slotAt resolves a packed handle, returning nil for stale events (the slot
// was freed — the job aborted — and possibly reused since).
func (m *Model) slotAt(packed int) *SimJob {
	slot := uint32(uint64(packed))
	gen := uint32(uint64(packed) >> 32)
	if m.slotGen[slot] != gen {
		return nil
	}
	return m.slotJob[slot]
}

func (m *Model) freeSlot(packed int) {
	slot := uint32(uint64(packed))
	m.slotGen[slot]++
	m.slotJob[slot] = nil
	m.slotFree.Push(int32(slot))
}

func (m *Model) launch(j *SimJob, group []int) {
	j.group = group
	j.start = m.Sim.Now()
	j.started = true
	for _, w := range group {
		m.busy[w] = j
	}
	m.runningJobs++
	m.sampleRunning()

	if j.Sequential {
		// Dispatch the single task: one dispatcher message, network, fork.
		j.slot = m.newSlot(j)
		m.dispatch.RequestCall(m.Prof.DispatchService, &m.hSeqSent, j.slot)
		return
	}
	// MPI path: fork mpiexec on the login node, then dispatch one proxy per
	// node through the central scheduler.
	m.login.Request(m.Prof.MPIExecSpawn, func() {
		if j.aborted {
			return
		}
		for range group {
			m.dispatch.Request(m.Prof.DispatchService, func() {
				if j.aborted {
					return
				}
				m.Sim.After(m.Prof.RTT+m.Prof.ProxyLaunch, func() {
					if j.aborted {
						return
					}
					j.ready++
					if j.ready == len(group) {
						wire := m.Prof.WireUpBase + time.Duration(j.procs())*m.Prof.WireUpPerRank
						m.Sim.After(wire, func() { m.runBody(j) })
					}
				})
			})
		}
	})
}

// seqSentH models the task message leaving the dispatcher: network plus the
// proxy fork on the compute node.
type seqSentH struct{ m *Model }

func (h *seqSentH) Fire(packed int) {
	m := h.m
	if m.slotAt(packed) == nil {
		return
	}
	m.Sim.AfterCall(m.Prof.RTT+m.Prof.ProxyLaunch, &m.hSeqLaunch, packed)
}

type seqLaunchH struct{ m *Model }

func (h *seqLaunchH) Fire(packed int) {
	if j := h.m.slotAt(packed); j != nil {
		h.m.runBody(j)
	}
}

// runBody executes the application: read I/O, think, write I/O.
func (m *Model) runBody(j *SimJob) {
	if j.aborted {
		return
	}
	if m.FS == nil || (m.Prof.BinaryBytes == 0 && j.ReadBytes == 0 && j.MetaOps == 0) {
		m.think(j)
		return
	}
	m.readPhase(j, func() {
		if j.aborted {
			return
		}
		m.think(j)
	})
}

// think runs the application's useful time, allocation-free when the job
// holds a slot (sequential path).
func (m *Model) think(j *SimJob) {
	if j.slot != 0 {
		m.Sim.AfterCall(j.Think, &m.hThinkDone, j.slot)
		return
	}
	m.Sim.After(j.Think, func() {
		if j.aborted {
			return
		}
		m.writePhase(j, func() { m.finish(j, false) })
	})
}

type thinkDoneH struct{ m *Model }

func (h *thinkDoneH) Fire(packed int) {
	m := h.m
	j := m.slotAt(packed)
	if j == nil {
		return
	}
	if m.FS == nil || (j.WriteBytes == 0 && j.MetaOps == 0) {
		m.finish(j, false)
		return
	}
	m.writePhase(j, func() { m.finish(j, false) })
}

// readPhase performs the per-process binary loads and the job's input I/O.
func (m *Model) readPhase(j *SimJob, done func()) {
	total := 0
	finishOne := func() {
		total--
		if total == 0 {
			done()
		}
	}
	if m.Prof.BinaryBytes > 0 {
		total += j.procs()
	}
	if j.ReadBytes > 0 {
		total++
	}
	half := j.MetaOps / 2
	total += half
	if total == 0 {
		done()
		return
	}
	if m.Prof.BinaryBytes > 0 {
		for i := 0; i < j.procs(); i++ {
			m.FS.Read(m.Prof.BinaryBytes, finishOne)
		}
	}
	if j.ReadBytes > 0 {
		m.FS.Read(j.ReadBytes, finishOne)
	}
	for i := 0; i < half; i++ {
		m.FS.Open(finishOne)
	}
}

func (m *Model) writePhase(j *SimJob, done func()) {
	if m.FS == nil || (j.WriteBytes == 0 && j.MetaOps == 0) {
		done()
		return
	}
	total := 0
	finishOne := func() {
		total--
		if total == 0 {
			done()
		}
	}
	if j.WriteBytes > 0 {
		total++
	}
	rest := j.MetaOps - j.MetaOps/2
	total += rest
	if total == 0 {
		done()
		return
	}
	if j.WriteBytes > 0 {
		m.FS.Write(j.WriteBytes, finishOne)
	}
	for i := 0; i < rest; i++ {
		m.FS.Open(finishOne)
	}
}

// nopH absorbs the result-message dispatcher charge.
type nopH struct{}

func (nopH) Fire(int) {}

func (m *Model) finish(j *SimJob, failed bool) {
	if j.done {
		return
	}
	j.done = true
	if j.slot != 0 {
		m.freeSlot(j.slot)
		j.slot = 0
	}
	rec := metrics.JobRecord{ID: j.ID, Procs: j.procs(), Start: j.start, Stop: m.Sim.Now()}
	keep := m.RecordLimit <= 0 || len(m.AllRecords) < m.RecordLimit
	if keep {
		m.AllRecords = append(m.AllRecords, rec)
	}
	if failed {
		m.Failed++
	} else {
		if keep {
			m.Records = append(m.Records, rec)
		}
		m.Completed++
		m.usefulProcSec += j.Think.Seconds() * float64(j.procs())
		if !m.spanSeen || rec.Start < m.firstStart {
			m.firstStart = rec.Start
		}
		if !m.spanSeen || rec.Stop > m.lastStop {
			m.lastStop = rec.Stop
		}
		m.spanSeen = true
	}
	m.runningJobs--
	m.sampleRunning()
	for _, w := range j.group {
		m.busy[w] = nil
		if m.alive[w] {
			// The worker's result message and next work request each cost a
			// dispatcher service; requestWork charges one, charge the other.
			m.dispatch.RequestCall(m.Prof.DispatchService, &m.hNop, 0)
			m.requestWork(w)
		}
	}
	if j.OnDone != nil {
		j.OnDone(j, failed)
	}
}

// KillWorker removes one worker immediately: an idle worker silently leaves
// the pool; a busy worker aborts its job (the other group members return to
// the pool), reproducing the §6.1.5 fault semantics.
func (m *Model) KillWorker(w int) {
	if w < 0 || w >= m.workers || !m.alive[w] {
		return
	}
	m.alive[w] = false
	// Swap-remove from the live index.
	pos := m.livePos[w]
	last := m.live[len(m.live)-1]
	m.live[pos] = last
	m.livePos[last] = pos
	m.live = m.live[:len(m.live)-1]
	m.livePos[w] = -1
	m.aliveCount--
	m.sampleAlive()
	if m.inIdle[w] {
		// The ring entry stays behind and is skipped when popped.
		m.inIdle[w] = false
		m.idleLive--
		return
	}
	if j := m.busy[w]; j != nil && !j.done {
		j.aborted = true
		m.finish(j, true)
	}
}

// KillRandomAlive kills one random live worker, returning false when none
// remain.
func (m *Model) KillRandomAlive() bool {
	if len(m.live) == 0 {
		return false
	}
	m.KillWorker(int(m.live[m.Sim.Rand().Intn(len(m.live))]))
	return true
}

// AliveWorkers reports live workers.
func (m *Model) AliveWorkers() int { return m.aliveCount }

// QueueLen reports jobs waiting for workers.
func (m *Model) QueueLen() int { return m.queue.Len() }

// IdleWorkers reports parked workers.
func (m *Model) IdleWorkers() int { return m.idleLive }

// RunningJobs reports jobs currently holding workers.
func (m *Model) RunningJobs() int { return m.runningJobs }

// Utilization computes Eq. (1) over the completed jobs: useful application
// proc-seconds (Think x total processes) divided by the allocation's
// proc-seconds over the batch span (first job start to last job stop, which
// amortizes boot ramp as the paper does for long runs).
func (m *Model) Utilization(coresPerWorker int) float64 {
	span := m.Span()
	if span <= 0 {
		return 0
	}
	u := m.usefulProcSec / (float64(m.workers*coresPerWorker) * span.Seconds())
	if u > 1 {
		u = 1
	}
	return u
}

// Span reports the batch makespan: first job start to last job stop, over
// completed jobs (tracked incrementally, so it is exact under RecordLimit).
func (m *Model) Span() time.Duration {
	if !m.spanSeen {
		return 0
	}
	return m.lastStop - m.firstStart
}

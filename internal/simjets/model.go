// Package simjets runs the JETS scheduling architecture inside the
// discrete-event simulator at the paper's scales (Blue Gene/P racks,
// multi-hour batches). The model reproduces the pipeline of Fig. 4: pilot
// workers request work from a central dispatcher (a queueing station whose
// service time bounds the task rate), MPI jobs fork an mpiexec on the login
// node, proxies are dispatched and launched per rank, PMI wire-up couples
// the processes, the application runs (with optional shared-filesystem
// I/O), and completions free the workers back into the FIFO idle pool.
package simjets

import (
	"fmt"
	"time"

	"jets/internal/event"
	"jets/internal/fsim"
	"jets/internal/metrics"
)

// SimJob is one application invocation in the model.
type SimJob struct {
	ID     string
	NProcs int // worker (node) count; 1 with Sequential
	PPN    int // processes per node (>=1); total MPI size = NProcs*PPN
	Think  time.Duration
	// Sequential bypasses the mpiexec/wire-up path (Falkon-style mode).
	Sequential bool

	// Shared-FS I/O performed by the job (zero values skip the phase):
	// ReadBytes before Think, WriteBytes after, MetaOps opens spread across
	// both, and one binary read of Profile.BinaryBytes per process when the
	// profile places binaries on the shared FS.
	ReadBytes  int
	WriteBytes int
	MetaOps    int

	// SwiftManaged applies the profile's Swift/Coasters per-task overhead
	// before dispatch (§6.2 experiments).
	SwiftManaged bool

	// OnDone, if set, runs when the job completes or aborts.
	OnDone func(j *SimJob, failed bool)

	group   []int
	start   time.Duration
	started bool
	done    bool
	aborted bool
	ready   int
}

func (j *SimJob) procs() int {
	ppn := j.PPN
	if ppn < 1 {
		ppn = 1
	}
	return j.NProcs * ppn
}

// Model is one simulated JETS deployment.
type Model struct {
	Sim  *event.Sim
	Prof Profile
	FS   *fsim.SharedFS

	dispatch *event.Station
	login    *event.Station
	// swift serializes Swift/Coasters task processing (the engine is a
	// single JVM pipeline); only SwiftManaged jobs pass through it.
	swift *event.Station

	workers int
	alive   []bool
	busy    []*SimJob
	idle    []int
	queue   []*SimJob

	// Records holds completed jobs; AllRecords additionally includes
	// aborted jobs with their abort time as Stop.
	Records    []metrics.JobRecord
	AllRecords []metrics.JobRecord
	Completed  int
	Failed     int
	// usefulProcSec accumulates Think x procs over completed jobs — the
	// numerator of Eq. (1), which counts only application time as useful.
	usefulProcSec float64

	aliveCount  int
	runningJobs int
	AliveSeries metrics.Series
	RunSeries   metrics.Series

	// BootSpread staggers worker arrival at start (allocation boot skew).
	BootSpread time.Duration
}

// NewModel builds a model with workersPerNode pilot agents per node.
func NewModel(sim *event.Sim, prof Profile, workersPerNode int) *Model {
	if workersPerNode < 1 {
		workersPerNode = 1
	}
	m := &Model{
		Sim:        sim,
		Prof:       prof,
		dispatch:   event.NewStation(sim, 1),
		login:      event.NewStation(sim, prof.LoginCores),
		swift:      event.NewStation(sim, 1),
		workers:    prof.Nodes * workersPerNode,
		BootSpread: time.Second,
	}
	if prof.NewSharedFS != nil {
		m.FS = prof.NewSharedFS(sim)
	}
	m.alive = make([]bool, m.workers)
	m.busy = make([]*SimJob, m.workers)
	return m
}

// Workers reports the worker count.
func (m *Model) Workers() int { return m.workers }

// Start boots the workers: each registers and requests work after a
// uniformly random boot skew.
func (m *Model) Start() {
	for w := 0; w < m.workers; w++ {
		w := w
		delay := time.Duration(0)
		if m.BootSpread > 0 {
			delay = time.Duration(m.Sim.Rand().Int63n(int64(m.BootSpread)))
		}
		m.Sim.After(delay, func() {
			m.alive[w] = true
			m.aliveCount++
			m.sampleAlive()
			m.requestWork(w)
		})
	}
}

func (m *Model) sampleAlive() {
	m.AliveSeries.T = append(m.AliveSeries.T, m.Sim.Now())
	m.AliveSeries.V = append(m.AliveSeries.V, float64(m.aliveCount))
}

func (m *Model) sampleRunning() {
	m.RunSeries.T = append(m.RunSeries.T, m.Sim.Now())
	m.RunSeries.V = append(m.RunSeries.V, float64(m.runningJobs))
}

// Submit queues a job (optionally after the Swift/Coasters stage).
func (m *Model) Submit(j *SimJob) {
	if j.NProcs < 1 {
		panic(fmt.Sprintf("simjets: job %s has %d procs", j.ID, j.NProcs))
	}
	enqueue := func() {
		m.queue = append(m.queue, j)
		m.trySchedule()
	}
	if j.SwiftManaged && m.Prof.SwiftOverhead > 0 {
		m.swift.Request(m.Prof.SwiftOverhead, enqueue)
	} else {
		enqueue()
	}
}

// requestWork models the worker's work-request message: one dispatcher
// service, after which the worker sits in the FIFO idle pool.
func (m *Model) requestWork(w int) {
	m.Sim.After(m.Prof.RTT/2, func() {
		m.dispatch.Request(m.Prof.DispatchService, func() {
			if !m.alive[w] {
				return
			}
			m.idle = append(m.idle, w)
			m.trySchedule()
		})
	})
}

// trySchedule launches queued jobs FIFO while the head fits the idle pool.
func (m *Model) trySchedule() {
	for len(m.queue) > 0 && m.queue[0].NProcs <= len(m.idle) {
		j := m.queue[0]
		m.queue = m.queue[1:]
		group := append([]int(nil), m.idle[:j.NProcs]...)
		m.idle = m.idle[j.NProcs:]
		m.launch(j, group)
	}
}

func (m *Model) launch(j *SimJob, group []int) {
	j.group = group
	j.start = m.Sim.Now()
	j.started = true
	for _, w := range group {
		m.busy[w] = j
	}
	m.runningJobs++
	m.sampleRunning()

	if j.Sequential {
		// Dispatch the single task: one dispatcher message, network, fork.
		m.dispatch.Request(m.Prof.DispatchService, func() {
			m.Sim.After(m.Prof.RTT+m.Prof.ProxyLaunch, func() {
				m.runBody(j)
			})
		})
		return
	}
	// MPI path: fork mpiexec on the login node, then dispatch one proxy per
	// node through the central scheduler.
	m.login.Request(m.Prof.MPIExecSpawn, func() {
		if j.aborted {
			return
		}
		for range group {
			m.dispatch.Request(m.Prof.DispatchService, func() {
				if j.aborted {
					return
				}
				m.Sim.After(m.Prof.RTT+m.Prof.ProxyLaunch, func() {
					if j.aborted {
						return
					}
					j.ready++
					if j.ready == len(group) {
						wire := m.Prof.WireUpBase + time.Duration(j.procs())*m.Prof.WireUpPerRank
						m.Sim.After(wire, func() { m.runBody(j) })
					}
				})
			})
		}
	})
}

// runBody executes the application: read I/O, think, write I/O.
func (m *Model) runBody(j *SimJob) {
	if j.aborted {
		return
	}
	m.readPhase(j, func() {
		if j.aborted {
			return
		}
		m.Sim.After(j.Think, func() {
			if j.aborted {
				return
			}
			m.writePhase(j, func() { m.finish(j, false) })
		})
	})
}

// readPhase performs the per-process binary loads and the job's input I/O.
func (m *Model) readPhase(j *SimJob, done func()) {
	if m.FS == nil || (m.Prof.BinaryBytes == 0 && j.ReadBytes == 0 && j.MetaOps == 0) {
		done()
		return
	}
	total := 0
	finishOne := func() {
		total--
		if total == 0 {
			done()
		}
	}
	if m.Prof.BinaryBytes > 0 {
		total += j.procs()
	}
	if j.ReadBytes > 0 {
		total++
	}
	half := j.MetaOps / 2
	total += half
	if total == 0 {
		done()
		return
	}
	if m.Prof.BinaryBytes > 0 {
		for i := 0; i < j.procs(); i++ {
			m.FS.Read(m.Prof.BinaryBytes, finishOne)
		}
	}
	if j.ReadBytes > 0 {
		m.FS.Read(j.ReadBytes, finishOne)
	}
	for i := 0; i < half; i++ {
		m.FS.Open(finishOne)
	}
}

func (m *Model) writePhase(j *SimJob, done func()) {
	if m.FS == nil || (j.WriteBytes == 0 && j.MetaOps == 0) {
		done()
		return
	}
	total := 0
	finishOne := func() {
		total--
		if total == 0 {
			done()
		}
	}
	if j.WriteBytes > 0 {
		total++
	}
	rest := j.MetaOps - j.MetaOps/2
	total += rest
	if total == 0 {
		done()
		return
	}
	if j.WriteBytes > 0 {
		m.FS.Write(j.WriteBytes, finishOne)
	}
	for i := 0; i < rest; i++ {
		m.FS.Open(finishOne)
	}
}

func (m *Model) finish(j *SimJob, failed bool) {
	if j.done {
		return
	}
	j.done = true
	rec := metrics.JobRecord{ID: j.ID, Procs: j.procs(), Start: j.start, Stop: m.Sim.Now()}
	m.AllRecords = append(m.AllRecords, rec)
	if failed {
		m.Failed++
	} else {
		m.Records = append(m.Records, rec)
		m.Completed++
		m.usefulProcSec += j.Think.Seconds() * float64(j.procs())
	}
	m.runningJobs--
	m.sampleRunning()
	for _, w := range j.group {
		m.busy[w] = nil
		if m.alive[w] {
			// The worker's result message and next work request each cost a
			// dispatcher service; requestWork charges one, charge the other.
			m.dispatch.Request(m.Prof.DispatchService, func() {})
			m.requestWork(w)
		}
	}
	if j.OnDone != nil {
		j.OnDone(j, failed)
	}
}

// KillWorker removes one worker immediately: an idle worker silently leaves
// the pool; a busy worker aborts its job (the other group members return to
// the pool), reproducing the §6.1.5 fault semantics.
func (m *Model) KillWorker(w int) {
	if w < 0 || w >= m.workers || !m.alive[w] {
		return
	}
	m.alive[w] = false
	m.aliveCount--
	m.sampleAlive()
	for i, idleW := range m.idle {
		if idleW == w {
			m.idle = append(m.idle[:i], m.idle[i+1:]...)
			return
		}
	}
	if j := m.busy[w]; j != nil && !j.done {
		j.aborted = true
		m.finish(j, true)
	}
}

// KillRandomAlive kills one random live worker, returning false when none
// remain.
func (m *Model) KillRandomAlive() bool {
	live := make([]int, 0, m.workers)
	for w, a := range m.alive {
		if a {
			live = append(live, w)
		}
	}
	if len(live) == 0 {
		return false
	}
	m.KillWorker(live[m.Sim.Rand().Intn(len(live))])
	return true
}

// QueueLen reports jobs waiting for workers.
func (m *Model) QueueLen() int { return len(m.queue) }

// IdleWorkers reports parked workers.
func (m *Model) IdleWorkers() int { return len(m.idle) }

// Utilization computes Eq. (1) over the completed jobs: useful application
// proc-seconds (Think x total processes) divided by the allocation's
// proc-seconds over the batch span (first job start to last job stop, which
// amortizes boot ramp as the paper does for long runs).
func (m *Model) Utilization(coresPerWorker int) float64 {
	span := m.Span()
	if span <= 0 {
		return 0
	}
	u := m.usefulProcSec / (float64(m.workers*coresPerWorker) * span.Seconds())
	if u > 1 {
		u = 1
	}
	return u
}

// Span reports the batch makespan: first job start to last job stop.
func (m *Model) Span() time.Duration {
	if len(m.Records) == 0 {
		return 0
	}
	first := m.Records[0].Start
	last := m.Records[0].Stop
	for _, r := range m.Records {
		if r.Start < first {
			first = r.Start
		}
		if r.Stop > last {
			last = r.Stop
		}
	}
	return last - first
}

package simjets

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"jets/internal/dispatch"
)

func TestReplayTraceParse(t *testing.T) {
	in := `
{"t":1000000,"kind":"worker-joined","worker":"w0"}
{"t":2000000,"kind":"worker-joined","worker":"w1"}
{"t":5000000,"kind":"job-submitted","job":"a"}
{"t":6000000,"kind":"job-queued","job":"a"}
{"t":7000000,"kind":"job-started","job":"a"}
{"t":7100000,"kind":"task-sent","job":"a","task":"a/seq","worker":"w0"}
{"t":57000000,"kind":"task-done","job":"a","task":"a/seq","worker":"w0"}
{"t":58000000,"kind":"job-completed","job":"a"}
{"t":8000000,"kind":"job-submitted","job":"b"}
{"t":9000000,"kind":"task-sent","job":"b","task":"b/0","worker":"w0"}
{"t":9000000,"kind":"task-sent","job":"b","task":"b/1","worker":"w1"}
{"t":80000000,"kind":"job-completed","job":"b"}
{"t":10000000,"kind":"job-submitted","job":"c"}
{"t":12000000,"kind":"job-failed","job":"c"}
{"t":90000000,"kind":"worker-lost","worker":"w1"}
`
	tr, err := ReplayTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Workers != 2 || tr.WorkersLost != 1 {
		t.Fatalf("workers=%d lost=%d, want 2/1", tr.Workers, tr.WorkersLost)
	}
	if len(tr.Jobs) != 2 || tr.Failed != 1 {
		t.Fatalf("jobs=%d failed=%d, want 2/1", len(tr.Jobs), tr.Failed)
	}
	a, b := tr.Jobs[0], tr.Jobs[1]
	if a.ID != "a" || a.SubmitAt != 5*time.Millisecond || a.Procs != 1 {
		t.Fatalf("job a: %+v", a)
	}
	// Service: first task-sent (7.1ms) to completion (58ms).
	if a.Service != 58*time.Millisecond-7100*time.Microsecond {
		t.Fatalf("job a service = %v", a.Service)
	}
	if b.Procs != 2 {
		t.Fatalf("job b procs = %d, want 2", b.Procs)
	}
	// Makespan: first start 7.1ms to last completion 80ms.
	if tr.RecordedMakespan != 80*time.Millisecond-7100*time.Microsecond {
		t.Fatalf("makespan = %v", tr.RecordedMakespan)
	}
	if tr.RecordedUtilization <= 0 || tr.RecordedUtilization > 1 {
		t.Fatalf("utilization = %v", tr.RecordedUtilization)
	}
}

func TestReplayTraceMalformed(t *testing.T) {
	cases := map[string]string{
		"bad json":    "{\"t\":1,\"kind\":\"job-submitted\"\n",
		"not object":  "[1,2,3]\n",
		"empty trace": "",
		"no complete": `{"t":1,"kind":"job-submitted","job":"x"}` + "\n",
	}
	for name, in := range cases {
		if _, err := ReplayTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Tolerated inputs: blank lines, unknown kinds, out-of-order and
	// negative timestamps.
	ok := `

{"t":-5,"kind":"future-kind","job":"z"}
{"t":9000000,"kind":"job-completed","job":"x"}
{"t":5000000,"kind":"job-submitted","job":"x"}
{"t":1,"kind":"worker-joined","worker":"w"}
`
	tr, err := ReplayTrace(strings.NewReader(ok))
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-order lines still reconstruct: submit 5ms, done 9ms.
	if len(tr.Jobs) != 1 || tr.Jobs[0].Service != 4*time.Millisecond {
		t.Fatalf("tolerant parse: %+v", tr.Jobs)
	}
}

// TestReplayRoundTripSynthetic replays a synthetic-but-realistic trace and
// checks the simulator lands close to the recorded aggregates: a pure
// think-time workload on an uncontended allocation should replay within a
// tight tolerance, since the model's extra launch overheads are milliseconds
// against second-scale services.
func TestReplayRoundTripSynthetic(t *testing.T) {
	var sb strings.Builder
	for w := 0; w < 8; w++ {
		sb.WriteString(`{"t":0,"kind":"worker-joined","worker":"w"}` + "\n")
	}
	// 32 sequential jobs, 2s each, submitted 250ms apart: 8 workers stay
	// saturated for ~8s.
	for i := 0; i < 32; i++ {
		at := time.Duration(i) * 250 * time.Millisecond
		start := at + 10*time.Millisecond
		done := start + 2*time.Second
		sb.WriteString(evLine(dispatch.EvJobSubmitted, at, "j", i))
		sb.WriteString(evLine(dispatch.EvJobStarted, start, "j", i))
		sb.WriteString(evLine(dispatch.EvTaskSent, start, "j", i))
		sb.WriteString(evLine(dispatch.EvJobCompleted, done, "j", i))
	}
	tr, err := ReplayTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 32 || tr.Workers != 8 {
		t.Fatalf("parsed jobs=%d workers=%d", len(tr.Jobs), tr.Workers)
	}
	rep := tr.Run(1)
	if rep.Failed != 0 || rep.Completed != 32 {
		t.Fatalf("replay: %+v", rep)
	}
	if e := rep.MakespanError; e < -0.1 || e > 0.1 {
		t.Fatalf("makespan error %.3f outside ±10%%: recorded %v simulated %v",
			e, rep.RecordedMakespan, rep.SimulatedMakespan)
	}
	if rep.UtilizationError > 0.1 {
		t.Fatalf("utilization error %.3f > 0.1 (recorded %.3f simulated %.3f)",
			rep.UtilizationError, rep.RecordedUtilization, rep.SimulatedUtilization)
	}
}

func evLine(kind dispatch.EventKind, at time.Duration, prefix string, i int) string {
	return fmt.Sprintf(`{"t":%d,"kind":%q,"job":"%s%d"}`+"\n", int64(at), kind, prefix, i)
}

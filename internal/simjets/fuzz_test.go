package simjets

import (
	"strings"
	"testing"
)

// FuzzReplayTrace feeds arbitrary byte streams through the trace parser and
// (when parsing succeeds) through the simulated re-execution. Neither may
// panic: traces arrive from live systems over file transfer and can be
// truncated, interleaved, or hand-edited. The replay run is capped by the
// parser's own structure — job counts are bounded by input size — so the
// whole round trip stays fuzz-speed.
func FuzzReplayTrace(f *testing.F) {
	seeds := []string{
		"",
		"\n\n",
		`{"t":1000,"kind":"worker-joined","worker":"w0"}` + "\n",
		`{"t":1000,"kind":"job-submitted","job":"a"}` + "\n" +
			`{"t":2000,"kind":"job-completed","job":"a"}` + "\n",
		`{"t":1000,"kind":"worker-joined","worker":"w0"}` + "\n" +
			`{"t":2000,"kind":"job-submitted","job":"a"}` + "\n" +
			`{"t":3000,"kind":"task-sent","job":"a","task":"a/seq","worker":"w0"}` + "\n" +
			`{"t":9000,"kind":"job-completed","job":"a"}` + "\n" +
			`{"t":9500,"kind":"worker-lost","worker":"w0"}` + "\n",
		// Out-of-order, negative, duplicate and unknown-kind lines.
		`{"t":-7,"kind":"job-completed","job":"x"}` + "\n" +
			`{"t":5,"kind":"job-submitted","job":"x"}` + "\n" +
			`{"t":1,"kind":"mystery","job":"x"}` + "\n" +
			`{"t":2,"kind":"job-completed","job":"x"}` + "\n",
		// Truncated JSON.
		`{"t":1000,"kind":"job-sub`,
		// Huge timestamp and retried/failed flow.
		`{"t":9223372036854775807,"kind":"job-submitted","job":"y"}` + "\n" +
			`{"t":4,"kind":"job-retried","job":"y"}` + "\n" +
			`{"t":5,"kind":"job-failed","job":"y"}` + "\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReplayTrace(strings.NewReader(string(data)))
		if err != nil {
			return
		}
		if len(tr.Jobs) == 0 {
			t.Fatal("nil error but no jobs — ReplayTrace contract broken")
		}
		// Bound the re-execution: replaying a fuzzed trace with absurd
		// worker counts or durations must still terminate and not panic.
		if tr.Workers > 4096 || len(tr.Jobs) > 4096 {
			return
		}
		rep := tr.Run(1)
		if rep.Completed+rep.Failed == 0 {
			t.Fatalf("replay of %d jobs ran none", len(tr.Jobs))
		}
	})
}

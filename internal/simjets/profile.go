package simjets

import (
	"time"

	"jets/internal/event"
	"jets/internal/fsim"
	"jets/internal/topology"
)

// Profile calibrates the simulator to one of the paper's machines. The
// values are fitted to the published results (launch rates, utilizations)
// rather than measured microscopically; EXPERIMENTS.md records the fit.
type Profile struct {
	Name         string
	Nodes        int
	CoresPerNode int

	// Net models the interconnect for MPI wire-up and barrier costs.
	Net topology.Network

	// DispatchService is the central JETS scheduler's per-message service
	// time (work-request handling, proxy dispatch). Its reciprocal bounds
	// the task rate: the Fig. 6 saturation at ~7,000 sequential jobs/s
	// implies ~2 messages/job at ~65 us each.
	DispatchService time.Duration

	// LoginCores bounds concurrent mpiexec work on the submit/login node;
	// MPIExecSpawn is the CPU cost of forking and running one mpiexec
	// process there. This is the resource whose congestion degrades
	// 4-processor tasks past 512 nodes in Fig. 9.
	LoginCores   int
	MPIExecSpawn time.Duration

	// ProxyLaunch is the per-process launch cost on a compute node (fork,
	// exec, loader); RTT is the worker-dispatcher round trip.
	ProxyLaunch time.Duration
	RTT         time.Duration

	// WireUpBase + NProcs*WireUpPerRank models PMI wire-up (put, barrier,
	// lazy connects) once all proxies are up.
	WireUpBase    time.Duration
	WireUpPerRank time.Duration

	// NewSharedFS builds the machine's shared filesystem model (GPFS or
	// PVFS); nil for experiments that do no I/O.
	NewSharedFS func(*event.Sim) *fsim.SharedFS

	// SwiftOverhead is the per-task Swift/Coasters processing time
	// (dataflow engine + CoasterService transmission), applied only by the
	// Swift-mode experiments (§6.2).
	SwiftOverhead time.Duration

	// BinaryBytes is the application binary size read at each process
	// start when the binary lives on the shared filesystem (the Fig. 15
	// PPN effect). Zero means the binary is in node-local storage.
	BinaryBytes int
}

// Surveyor models the Blue Gene/P rack used in §6.1: 1,024 nodes x 4 cores,
// ZeptoOS, torus network, PVFS storage, JETS service on a login node.
func Surveyor(nodes int) Profile {
	return Profile{
		Name:            "surveyor-bgp",
		Nodes:           nodes,
		CoresPerNode:    4,
		Net:             topology.BGPSockets(8, 8, 16),
		DispatchService: 44 * time.Microsecond,
		LoginCores:      4,
		MPIExecSpawn:    180 * time.Millisecond,
		ProxyLaunch:     130 * time.Millisecond, // slow BG/P cores + worker script
		RTT:             900 * time.Microsecond,
		WireUpBase:      25 * time.Millisecond,
		WireUpPerRank:   8 * time.Millisecond,
		NewSharedFS:     fsim.PVFS,
	}
}

// Breadboard models the x86 cluster of §6.1.2: fast nodes, Ethernet, ssh
// reachable.
func Breadboard(nodes int) Profile {
	return Profile{
		Name:            "breadboard-x86",
		Nodes:           nodes,
		CoresPerNode:    8,
		Net:             topology.ClusterEthernet(),
		DispatchService: 40 * time.Microsecond,
		LoginCores:      8,
		MPIExecSpawn:    18 * time.Millisecond,
		ProxyLaunch:     9 * time.Millisecond,
		RTT:             250 * time.Microsecond,
		WireUpBase:      6 * time.Millisecond,
		WireUpPerRank:   800 * time.Microsecond,
		NewSharedFS:     fsim.GPFS,
	}
}

// Eureka models the 100-node x86 cluster of §6.2 (two quad-core Xeons per
// node, GPFS) running the Swift/Coasters stack.
func Eureka(nodes int) Profile {
	p := Breadboard(nodes)
	p.Name = "eureka-x86"
	p.CoresPerNode = 8
	p.SwiftOverhead = 90 * time.Millisecond
	p.NewSharedFS = fsim.GPFS
	p.BinaryBytes = 12 << 20 // NAMD-scale binary read from GPFS per process
	return p
}

// SSHStartup is the per-node cost of starting a job through ssh, used by
// the shell-script baseline of Fig. 7 (ssh handshake + remote fork).
const SSHStartup = 70 * time.Millisecond

// SSHFanout is the ssh launcher's bounded parallelism in the baseline.
const SSHFanout = 4

// BaselineMPIExecSetup is the fixed mpiexec startup of the shell-script
// baseline before any node is contacted.
const BaselineMPIExecSetup = 250 * time.Millisecond

package jets

// One benchmark per evaluation figure (plus ablations and real-runtime
// microbenchmarks). Figure benchmarks at Blue Gene/P scale drive the
// discrete-event simulator; messaging and dispatcher benchmarks run the real
// implementation. Custom metrics carry the figure's headline number (jobs/s,
// utilization) so `go test -bench` output reads like the paper's tables.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jets/internal/coasters"
	"jets/internal/core"
	"jets/internal/dht"
	"jets/internal/dispatch"
	"jets/internal/event"
	"jets/internal/event/legacy"
	"jets/internal/hydra"
	"jets/internal/mpi"
	"jets/internal/pmi"
	"jets/internal/proto"
	"jets/internal/simjets"
	"jets/internal/swiftlang"
	"jets/internal/workload"
)

// ---------------------------------------------------------------------------
// Figure benchmarks (simulator)

func BenchmarkFig06SequentialRate(b *testing.B) {
	for _, nodes := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				rows := simjets.Fig06SequentialRate([]int{nodes}, 20, int64(i+1))
				rate = rows[0].JobsPerSec
			}
			b.ReportMetric(rate, "jobs/s")
		})
	}
}

func BenchmarkFig07ClusterUtilization(b *testing.B) {
	for _, alloc := range []int{16, 64} {
		b.Run(fmt.Sprintf("alloc=%d", alloc), func(b *testing.B) {
			var jets4, shell float64
			for i := 0; i < b.N; i++ {
				for _, r := range simjets.Fig07Cluster([]int{alloc}, int64(i+1)) {
					switch r.Mode {
					case "jets-4proc":
						jets4 = r.Utilization
					case "shell-script":
						shell = r.Utilization
					}
				}
			}
			b.ReportMetric(100*jets4, "jets-util-%")
			b.ReportMetric(100*shell, "shell-util-%")
		})
	}
}

func BenchmarkFig08PingPong(b *testing.B) {
	for _, size := range []int{64, 4096, 262144} {
		payload := make([]byte, size)
		run := func(b *testing.B, tcp bool) {
			var perMsg time.Duration
			body := func(c *mpi.Comm) error {
				if err := c.Barrier(); err != nil {
					return err
				}
				start := time.Now()
				for i := 0; i < b.N; i++ {
					if c.Rank() == 0 {
						if err := c.Send(1, 1, payload); err != nil {
							return err
						}
						if _, err := c.Recv(1, 2); err != nil {
							return err
						}
					} else {
						if _, err := c.Recv(0, 1); err != nil {
							return err
						}
						if err := c.Send(0, 2, payload); err != nil {
							return err
						}
					}
				}
				if c.Rank() == 0 {
					perMsg = time.Since(start) / time.Duration(2*b.N)
				}
				return nil
			}
			var err error
			if tcp {
				err = mpi.RunTCP(2, body)
			} else {
				err = mpi.RunLocal(2, body)
			}
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(perMsg.Nanoseconds()), "ns/msg")
			b.SetBytes(int64(size))
		}
		b.Run(fmt.Sprintf("native/size=%d", size), func(b *testing.B) { run(b, false) })
		b.Run(fmt.Sprintf("sockets/size=%d", size), func(b *testing.B) { run(b, true) })
	}
}

func BenchmarkFig09BGPUtilization(b *testing.B) {
	for _, alloc := range []int{512, 1024} {
		for _, nproc := range []int{4, 8, 64} {
			b.Run(fmt.Sprintf("alloc=%d/nproc=%d", alloc, nproc), func(b *testing.B) {
				var util float64
				for i := 0; i < b.N; i++ {
					rows := simjets.Fig09BGP([]int{alloc}, []int{nproc}, int64(i+1))
					util = rows[0].Utilization
				}
				b.ReportMetric(100*util, "util-%")
			})
		}
	}
}

func BenchmarkFig10Faulty(b *testing.B) {
	var meanRunning float64
	for i := 0; i < b.N; i++ {
		tr := simjets.Fig10Faulty(32, 10*time.Second, 5*time.Second, int64(i+1))
		// Mean running jobs over the decay window, the Fig. 10 health signal.
		meanRunning = tr.Running.Mean(330 * time.Second)
	}
	b.ReportMetric(meanRunning, "mean-running-jobs")
}

func BenchmarkFig11NAMDDistribution(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		h := simjets.Fig11Histogram(1536, int64(i+1))
		mean = h.Mean()
	}
	b.ReportMetric(mean, "mean-walltime-s")
}

func BenchmarkFig12NAMDUtilization(b *testing.B) {
	for _, alloc := range []int{256, 1024} {
		b.Run(fmt.Sprintf("alloc=%d", alloc), func(b *testing.B) {
			var util float64
			for i := 0; i < b.N; i++ {
				rows := simjets.Fig12NAMD([]int{alloc}, int64(i+1))
				util = rows[0].Utilization
			}
			b.ReportMetric(100*util, "util-%")
		})
	}
}

func BenchmarkFig13NAMDLoad(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		peak = simjets.Fig13LoadLevel(int64(i + 1)).Max()
	}
	b.ReportMetric(peak, "peak-busy-procs")
}

func BenchmarkFig15SwiftSynthetic(b *testing.B) {
	for _, ppn := range []int{1, 8} {
		b.Run(fmt.Sprintf("alloc=16/npj=4/ppn=%d", ppn), func(b *testing.B) {
			var util float64
			for i := 0; i < b.N; i++ {
				rows := simjets.Fig15Swift([]int{16}, []int{4}, []int{ppn}, int64(i+1))
				util = rows[0].Utilization
			}
			b.ReportMetric(100*util, "util-%")
		})
	}
}

func BenchmarkFig18aREMSingle(b *testing.B) {
	for _, alloc := range []int{4, 64} {
		b.Run(fmt.Sprintf("alloc=%d", alloc), func(b *testing.B) {
			var util float64
			for i := 0; i < b.N; i++ {
				rows := simjets.Fig18REM([]int{alloc}, true, int64(i+1))
				util = rows[0].Utilization
			}
			b.ReportMetric(100*util, "util-%")
		})
	}
}

func BenchmarkFig18bREMMPI(b *testing.B) {
	for _, alloc := range []int{8, 64} {
		b.Run(fmt.Sprintf("alloc=%d", alloc), func(b *testing.B) {
			var util float64
			for i := 0; i < b.N; i++ {
				rows := simjets.Fig18REM([]int{alloc}, false, int64(i+1))
				util = rows[0].Utilization
			}
			b.ReportMetric(100*util, "util-%")
		})
	}
}

// ---------------------------------------------------------------------------
// Event-core throughput

// simEventsWorkload is the handler-form half of BenchmarkSimEvents: W workers
// cycle think -> station service -> think forever, sustaining a large
// outstanding event population. Handlers carry the worker index as the event
// arg, so the steady state allocates nothing.
type simEventsWorkload struct {
	s  *event.Sim
	st *event.Station
}

func (x *simEventsWorkload) thinkOf(w int) time.Duration {
	return time.Duration(100+w%1000) * time.Microsecond
}

// Fire is the think-expired handler: the worker requests station service.
func (x *simEventsWorkload) Fire(w int) {
	x.st.RequestCall(10*time.Microsecond, (*simEventsServed)(x), w)
}

// simEventsServed is the service-complete handler: the worker thinks again.
type simEventsServed simEventsWorkload

func (x *simEventsServed) Fire(w int) {
	x.s.AfterCall((*simEventsWorkload)(x).thinkOf(w), (*simEventsWorkload)(x), w)
}

// BenchmarkSimEvents measures raw simulator event throughput under a
// station-heavy churn workload with 32768 concurrent workers (a large live
// heap, the regime million-worker sweeps run in). heap=legacy is the frozen
// pre-optimization core (container/heap of pointers, closure callbacks);
// heap=flat is the current core driven through the allocation-free
// handler/arg API. events/s is the headline; the flat core must hold >=5x
// the legacy core (the BENCH_8 gate).
func BenchmarkSimEvents(b *testing.B) {
	const workers = 32768
	b.Run(fmt.Sprintf("heap=legacy/workers=%d", workers), func(b *testing.B) {
		s := legacy.New(1)
		st := legacy.NewStation(s, 64)
		var cycle func(w int)
		cycle = func(w int) {
			think := time.Duration(100+w%1000) * time.Microsecond
			s.After(think, func() {
				st.Request(10*time.Microsecond, func() { cycle(w) })
			})
		}
		for w := 0; w < workers; w++ {
			cycle(w)
		}
		b.ReportAllocs()
		b.ResetTimer()
		if got := s.Run(uint64(b.N)); got != uint64(b.N) {
			b.Fatalf("ran %d events, want %d", got, b.N)
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
	b.Run(fmt.Sprintf("heap=flat/workers=%d", workers), func(b *testing.B) {
		s := event.New(1)
		wl := &simEventsWorkload{s: s, st: event.NewStation(s, 64)}
		for w := 0; w < workers; w++ {
			s.AfterCall(wl.thinkOf(w), wl, w)
		}
		b.ReportAllocs()
		b.ResetTimer()
		if got := s.Run(uint64(b.N)); got != uint64(b.N) {
			b.Fatalf("ran %d events, want %d", got, b.N)
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
}

// ---------------------------------------------------------------------------
// Ablations (design choices called out in DESIGN.md)

// BenchmarkAblationQueuePolicy compares FIFO head-of-line blocking against
// priority+backfill (the §7 extension) in the scenario where it matters: a
// full-pool job is queued while half the pool is busy, with small jobs
// behind it. FIFO idles the free half until the big job can start; backfill
// runs the small jobs there immediately.
func BenchmarkAblationQueuePolicy(b *testing.B) {
	run := func(b *testing.B, queue func() dispatch.QueuePolicy) {
		var total time.Duration
		for i := 0; i < b.N; i++ {
			runner := hydra.NewFuncRunner()
			workload.RegisterApps(runner)
			eng, err := core.NewEngine(core.Options{LocalWorkers: 8, Runner: runner, Queue: queue()})
			if err != nil {
				b.Fatal(err)
			}
			start := time.Now()
			// Occupy half the pool with a long task.
			long, err := eng.Submit(dispatch.Job{
				Spec: hydra.JobSpec{JobID: "long", NProcs: 4, Cmd: workload.BarrierApp, Args: []string{"60"}},
				Type: dispatch.MPI,
			})
			if err != nil {
				b.Fatal(err)
			}
			// Let it start so the next submission truly queues.
			for eng.Dispatcher().RunningJobs() == 0 {
				time.Sleep(time.Millisecond)
			}
			handles := []*dispatch.Handle{long}
			big, err := eng.Submit(dispatch.Job{
				Spec: hydra.JobSpec{JobID: "big", NProcs: 8, Cmd: workload.BarrierApp, Args: []string{"5"}},
				Type: dispatch.MPI,
			})
			if err != nil {
				b.Fatal(err)
			}
			handles = append(handles, big)
			for j := 0; j < 16; j++ {
				h, err := eng.Submit(dispatch.Job{
					Spec: hydra.JobSpec{JobID: fmt.Sprintf("small%d", j), NProcs: 1,
						Cmd: workload.BarrierApp, Args: []string{"5"}},
					Type: dispatch.MPI,
				})
				if err != nil {
					b.Fatal(err)
				}
				handles = append(handles, h)
			}
			for _, h := range handles {
				if res := h.Wait(); res.Failed {
					b.Fatalf("job %s failed: %s", res.JobID, res.Err)
				}
			}
			total += time.Since(start)
			eng.Close()
		}
		b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "mean-makespan-ms")
	}
	b.Run("fifo", func(b *testing.B) {
		run(b, func() dispatch.QueuePolicy { return dispatch.NewFIFOQueue() })
	})
	b.Run("priority-backfill", func(b *testing.B) {
		run(b, func() dispatch.QueuePolicy { return dispatch.NewPriorityQueue(true) })
	})
}

// BenchmarkAblationGroupPolicy compares first-come-first-served worker
// grouping against the topology-aware extension by the mean torus hop count
// of assembled groups (lower = tighter placements).
func BenchmarkAblationGroupPolicy(b *testing.B) {
	// Synthetic idle pool with shuffled torus coordinates.
	coords := make([][]int, 64)
	for i := range coords {
		coords[i] = []int{(i * 7) % 8, (i * 3) % 8, (i * 5) % 16}
	}
	hops := func(sel []int) float64 {
		total, pairs := 0, 0
		for i := 0; i < len(sel); i++ {
			for j := i + 1; j < len(sel); j++ {
				a, c := coords[sel[i]], coords[sel[j]]
				for k := range a {
					d := a[k] - c[k]
					if d < 0 {
						d = -d
					}
					total += d
				}
				pairs++
			}
		}
		return float64(total) / float64(pairs)
	}
	for _, tc := range []struct {
		name   string
		policy dispatch.GroupPolicy
	}{
		{"fcfs", dispatch.FirstComeFirstServed},
		{"topology-aware", dispatch.TopologyAware},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				mean = hops(tc.policy(coords, 8))
			}
			b.ReportMetric(mean, "mean-hops")
		})
	}
}

// BenchmarkAblationLocalStorage quantifies the paper's local-storage
// optimization: Fig. 15 conditions with the application binary on the
// shared filesystem versus cached in node-local RAM.
func BenchmarkAblationLocalStorage(b *testing.B) {
	run := func(b *testing.B, local bool) {
		var util float64
		for i := 0; i < b.N; i++ {
			util = simjets.Fig15LocalStorage(16, 4, 8, local, int64(i+1))
		}
		b.ReportMetric(100*util, "util-%")
	}
	b.Run("gpfs-binary", func(b *testing.B) { run(b, false) })
	b.Run("local-binary", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationMPIIO quantifies the §1.2/§7 MPI-IO argument: the number
// of filesystem clients for a 16-process job's output, direct (every rank
// writes) versus collective two-phase with one aggregator (N/16 clients).
func BenchmarkAblationMPIIO(b *testing.B) {
	const ranks, block = 16, 4096
	run := func(b *testing.B, naggs int, direct bool) {
		var accesses atomic64
		for i := 0; i < b.N; i++ {
			accesses.store(0)
			sink := &countingWriterAt{counter: &accesses}
			err := mpi.RunLocal(ranks, func(c *mpi.Comm) error {
				data := make([]byte, block)
				if direct {
					// Uncoordinated MTC-style I/O: every rank is a client.
					if _, err := sink.WriteAt(data, int64(c.Rank()*block)); err != nil {
						return err
					}
					return c.Barrier()
				}
				_, err := c.WriteAtAll(sink, int64(c.Rank()*block), data, naggs)
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(accesses.load()), "fs-accesses")
	}
	b.Run("direct-16clients", func(b *testing.B) { run(b, 0, true) })
	b.Run("collective-1agg", func(b *testing.B) { run(b, 1, false) })
	b.Run("collective-4agg", func(b *testing.B) { run(b, 4, false) })
}

type atomic64 struct{ v atomic.Int64 }

func (a *atomic64) add()          { a.v.Add(1) }
func (a *atomic64) store(x int64) { a.v.Store(x) }
func (a *atomic64) load() int64   { return a.v.Load() }

type countingWriterAt struct{ counter *atomic64 }

func (w *countingWriterAt) WriteAt(p []byte, off int64) (int, error) {
	w.counter.add()
	return len(p), nil
}

// BenchmarkDHT measures the distributed-hash-table data-passing layer (§7).
func BenchmarkDHT(b *testing.B) {
	for _, op := range []string{"put", "get"} {
		b.Run(op, func(b *testing.B) {
			err := mpi.RunLocal(4, func(c *mpi.Comm) error {
				tab, err := dht.New(c)
				if err != nil {
					return err
				}
				val := make([]byte, 256)
				if c.Rank() == 0 {
					if op == "get" {
						for i := 0; i < b.N; i++ {
							if err := tab.Put(fmt.Sprintf("k%d", i), val); err != nil {
								return err
							}
						}
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							if _, err := tab.Get(fmt.Sprintf("k%d", i)); err != nil {
								return err
							}
						}
					} else {
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							if err := tab.Put(fmt.Sprintf("k%d", i), val); err != nil {
								return err
							}
						}
					}
				}
				if err := c.Barrier(); err != nil {
					return err
				}
				return tab.Close()
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Real-runtime microbenchmarks

// BenchmarkIdealLaunchRate measures raw in-process task launch (the §6.1.1
// "ideal" point analogue): proxy execution with no dispatcher.
func BenchmarkIdealLaunchRate(b *testing.B) {
	runner := hydra.NewFuncRunner()
	runner.Register("noop", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		return 0
	})
	task := proto.Task{TaskID: "t", JobID: "j", Cmd: "noop"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := hydra.RunProxy(context.Background(), &task, runner, io.Discard)
		if res.ExitCode != 0 {
			b.Fatal("task failed")
		}
	}
}

// BenchmarkDispatchThroughput measures the real dispatcher's sequential task
// rate over loopback TCP with in-process workers, reporting jobs/s. The
// wire variants isolate the protocol overhaul: v1 JSON framing with
// per-frame flushes (the seed configuration) against the v2 binary fast
// path with write coalescing. The shards variants isolate the scheduling-
// state sharding on the binary wire: one global lock (shards=1) against the
// sharded+stealing scheduler (shards=4; the 8 workers' coordinate planes
// spread two per shard).
func BenchmarkDispatchThroughput(b *testing.B) {
	run := func(b *testing.B, jsonWire bool, coalesce, shards int) {
		runner := hydra.NewFuncRunner()
		workload.RegisterApps(runner)
		eng, err := core.NewEngine(core.Options{
			LocalWorkers: 8, Runner: runner,
			JSONWire: jsonWire, WriteCoalesce: coalesce, Shards: shards,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		b.ResetTimer()
		handles := make([]*dispatch.Handle, 0, b.N)
		for i := 0; i < b.N; i++ {
			h, err := eng.Submit(dispatch.Job{
				Spec: hydra.JobSpec{JobID: fmt.Sprintf("n%d", i), NProcs: 1, Cmd: workload.NoopApp},
				Type: dispatch.Sequential,
			})
			if err != nil {
				b.Fatal(err)
			}
			handles = append(handles, h)
		}
		for _, h := range handles {
			if res := h.Wait(); res.Failed {
				b.Fatal("job failed")
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
	}
	b.Run("json-wire", func(b *testing.B) { run(b, true, 1, 0) })
	b.Run("binary-coalesced", func(b *testing.B) { run(b, false, 16, 0) })
	b.Run("shards=1", func(b *testing.B) { run(b, false, 16, 1) })
	b.Run("shards=4", func(b *testing.B) { run(b, false, 16, 4) })
}

// BenchmarkDispatchThroughputJournaled is the binary-coalesced configuration
// with the crash-safe journal enabled, isolating the durability overhead:
// every submit/dispatch/complete appends a WAL record and group-commit fsyncs
// batch them on a 2ms cadence, so the cost amortizes across in-flight jobs
// rather than serializing on the disk.
func BenchmarkDispatchThroughputJournaled(b *testing.B) {
	runner := hydra.NewFuncRunner()
	workload.RegisterApps(runner)
	eng, err := core.NewEngine(core.Options{
		LocalWorkers: 8, Runner: runner,
		WriteCoalesce: 16,
		DataDir:       b.TempDir(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	b.ResetTimer()
	handles := make([]*dispatch.Handle, 0, b.N)
	for i := 0; i < b.N; i++ {
		h, err := eng.Submit(dispatch.Job{
			Spec: hydra.JobSpec{JobID: fmt.Sprintf("j%d", i), NProcs: 1, Cmd: workload.NoopApp},
			Type: dispatch.Sequential,
		})
		if err != nil {
			b.Fatal(err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		if res := h.Wait(); res.Failed {
			b.Fatal("job failed")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkDispatchThroughputSpilled is the journaled configuration with a
// deliberately tiny hot queue window, so the submitted backlog spills to the
// on-disk store and every job is rehydrated through the read-ahead refill
// path before it dispatches. It prices the full spill round trip (encode,
// segment write, pread, decode) on top of the WAL, the worst case for the
// disk-backed cold queue.
func BenchmarkDispatchThroughputSpilled(b *testing.B) {
	runner := hydra.NewFuncRunner()
	workload.RegisterApps(runner)
	eng, err := core.NewEngine(core.Options{
		LocalWorkers: 8, Runner: runner,
		WriteCoalesce: 16,
		DataDir:       b.TempDir(),
		HotQueueJobs:  64,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	b.ResetTimer()
	handles := make([]*dispatch.Handle, 0, b.N)
	for i := 0; i < b.N; i++ {
		h, err := eng.Submit(dispatch.Job{
			Spec: hydra.JobSpec{JobID: fmt.Sprintf("s%d", i), NProcs: 1, Cmd: workload.NoopApp},
			Type: dispatch.Sequential,
		})
		if err != nil {
			b.Fatal(err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		if res := h.Wait(); res.Failed {
			b.Fatal("job failed")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
	b.ReportMetric(float64(eng.Dispatcher().Stats().JobsSpilled)/float64(b.N), "spilled/job")
}

// BenchmarkFederatedThroughput measures aggregate sequential job throughput
// with the work router in front of federated dispatcher instances (ISSUE 9),
// against a single dispatcher serving the same total worker pool. The
// submitter keeps a bounded outstanding window (64 jobs, 8 per worker) and
// drains completions through the OnDone demux — the throttled-client shape
// real MPTC frontends use — so both variants measure steady-state pipeline
// rate rather than burst buffering.
//
// On a single-CPU host this comparison prices the router tier, it cannot
// reward it: partitioning the scheduler four ways buys nothing when every
// instance shares one core, so federate=4 reads as the per-job router tax
// (consistent-hash placement, routing-table insert/delete, the second
// handle). The aggregate-beats-one-instance claim needs the many-core /
// multi-box run tracked in ROADMAP, same caveat as the shards=4 variant of
// BenchmarkDispatchThroughput.
func BenchmarkFederatedThroughput(b *testing.B) {
	const window = 64
	run := func(b *testing.B, federate int) {
		runner := hydra.NewFuncRunner()
		workload.RegisterApps(runner)
		eng, err := core.NewEngine(core.Options{
			LocalWorkers: 8, Runner: runner,
			WriteCoalesce: 16, Federate: federate,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		b.ResetTimer()
		var wg sync.WaitGroup
		var failed atomic.Int64
		wg.Add(b.N)
		sem := make(chan struct{}, window)
		for i := 0; i < b.N; i++ {
			sem <- struct{}{}
			h, err := eng.Submit(dispatch.Job{
				Spec: hydra.JobSpec{JobID: fmt.Sprintf("f%d", i), NProcs: 1, Cmd: workload.NoopApp},
				Type: dispatch.Sequential,
			})
			if err != nil {
				b.Fatal(err)
			}
			h.OnDone(func(res dispatch.JobResult) {
				if res.Failed {
					failed.Add(1)
				}
				<-sem
				wg.Done()
			})
		}
		wg.Wait()
		b.StopTimer()
		if n := failed.Load(); n > 0 {
			b.Fatalf("%d jobs failed", n)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
	}
	b.Run("single", func(b *testing.B) { run(b, 1) })
	b.Run("federate=4", func(b *testing.B) { run(b, 4) })
}

// BenchmarkMPIJobLaunch measures the full MPI job cycle through the real
// stack: mpiexec start, proxy dispatch, PMI wire-up, barrier, teardown.
func BenchmarkMPIJobLaunch(b *testing.B) {
	for _, nproc := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("nproc=%d", nproc), func(b *testing.B) {
			runner := hydra.NewFuncRunner()
			workload.RegisterApps(runner)
			eng, err := core.NewEngine(core.Options{LocalWorkers: nproc, Runner: runner})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h, err := eng.Submit(dispatch.Job{
					Spec: hydra.JobSpec{JobID: fmt.Sprintf("m%d", i), NProcs: nproc,
						Cmd: workload.BarrierApp, Args: []string{"0"}},
					Type: dispatch.MPI,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res := h.Wait(); res.Failed {
					b.Fatalf("job failed: %+v", res)
				}
			}
		})
	}
}

// BenchmarkMPICollectives measures barrier and allreduce over the channel
// transport.
func BenchmarkMPICollectives(b *testing.B) {
	b.Run("barrier-8", func(b *testing.B) {
		if err := mpi.RunLocal(8, func(c *mpi.Comm) error {
			for i := 0; i < b.N; i++ {
				if err := c.Barrier(); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("allreduce-8x16", func(b *testing.B) {
		in := make([]float64, 16)
		if err := mpi.RunLocal(8, func(c *mpi.Comm) error {
			for i := 0; i < b.N; i++ {
				if _, err := c.AllreduceFloat64(mpi.OpSum, in); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkPMIWireUp measures the full PMI bootstrap (put, barrier, get all)
// for an 8-rank job.
func BenchmarkPMIWireUp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		srv, err := pmi.NewServer(fmt.Sprintf("kvs%d", i), 8)
		if err != nil {
			b.Fatal(err)
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		errs := make(chan error, 8)
		for rank := 0; rank < 8; rank++ {
			go func(rank int) {
				c, err := pmi.Dial(addr, rank)
				if err != nil {
					errs <- err
					return
				}
				if err := c.Put(fmt.Sprintf("addr-%d", rank), fmt.Sprintf("h%d", rank)); err != nil {
					errs <- err
					return
				}
				if err := c.Barrier(); err != nil {
					errs <- err
					return
				}
				for p := 0; p < 8; p++ {
					if _, err := c.Get(fmt.Sprintf("addr-%d", p)); err != nil {
						errs <- err
						return
					}
				}
				errs <- c.Finalize()
			}(rank)
		}
		for rank := 0; rank < 8; rank++ {
			if err := <-errs; err != nil {
				b.Fatal(err)
			}
		}
		srv.Close()
	}
}

// BenchmarkProtoCodec measures wire-protocol framing cost — one Send plus
// one Recv through an in-memory stream, i.e. pure encode+frame+decode with
// no socket or goroutine handoff — for the v1 JSON format against the v2
// binary fast path, per hot frame kind. ns/msg and allocs/op carry the
// comparison.
func BenchmarkProtoCodec(b *testing.B) {
	task := &proto.Envelope{Kind: proto.KindTask, Task: &proto.Task{
		TaskID: "job174/rank3", JobID: "job174", Cmd: "namd2.sh",
		Args: []string{"input-174.pdb", "output-174.log"},
		Env:  []string{"PMI_RANK=3", "JETS_CACHE=/dev/shm/jets"},
		Rank: 3, Size: 8, Control: "10.0.0.7:51123", KVS: "kvs_job174_1",
	}}
	result := &proto.Envelope{Kind: proto.KindResult, Result: &proto.Result{
		TaskID: "job174/rank3", JobID: "job174", Elapsed: 93 * time.Millisecond,
	}}
	output := &proto.Envelope{Kind: proto.KindOutput, Output: &proto.Output{
		TaskID: "job174/rank3", Stream: "stdout", Data: make([]byte, 512),
	}}
	heartbeat := &proto.Envelope{Kind: proto.KindHeartbeat, Heartbeat: &proto.Heartbeat{
		WorkerID: "ion-17-worker-4", Busy: true, Uptime: 17 * time.Minute,
	}}
	stage := &proto.Envelope{Kind: proto.KindStage, Stage: &proto.Stage{
		Name: "namd2.sh", Data: make([]byte, 64<<10),
	}}
	for _, msg := range []struct {
		name string
		env  *proto.Envelope
	}{
		{"task", task}, {"result", result}, {"output-512B", output}, {"heartbeat", heartbeat},
		{"stage-64KB", stage},
	} {
		for _, wire := range []string{"json", "binary"} {
			b.Run(msg.name+"/"+wire, func(b *testing.B) {
				var buf bytes.Buffer
				c := proto.NewCodec(&buf)
				if wire == "binary" {
					c.EnableBinary()
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := c.Send(msg.env); err != nil {
						b.Fatal(err)
					}
					if _, err := c.Recv(); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/msg")
			})
		}
	}
}

// BenchmarkOutputRelay measures the data-plane output path end to end:
// worker stdout chunks -> dispatcher -> subscriber relay -> data client,
// 16 chunks of 8 KiB per job, reporting relayed MB/s. The variants isolate
// the v2.1 zero-copy passthrough: "raw" forwards the worker's original
// frame bytes to a binary client, "decode" forces the decode/re-encode
// path on the same wire (NoRawRelay), and "json-client" serves a v1 client
// that can only receive JSON.
func BenchmarkOutputRelay(b *testing.B) {
	const chunks, chunkSize = 16, 8 << 10
	run := func(b *testing.B, noRaw, clientJSON bool) {
		runner := hydra.NewFuncRunner()
		payload := bytes.Repeat([]byte{0x42}, chunkSize)
		runner.Register("burst", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
			for i := 0; i < chunks; i++ {
				stdout.Write(payload)
			}
			return 0
		})
		svc, err := coasters.NewService(coasters.Config{
			Provider:   &coasters.LocalProvider{Runner: runner},
			NoRawRelay: noRaw,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer svc.Close()
		if err := svc.EnsureWorkers(context.Background(), 4); err != nil {
			b.Fatal(err)
		}
		addr, err := svc.ServeData("")
		if err != nil {
			b.Fatal(err)
		}
		dc, err := coasters.DialData(addr, clientJSON)
		if err != nil {
			b.Fatal(err)
		}
		defer dc.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h, err := svc.Submit(context.Background(), dispatch.Job{
				Spec: hydra.JobSpec{JobID: fmt.Sprintf("b%d", i), NProcs: 1, Cmd: "burst"},
				Type: dispatch.Sequential,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res := h.Wait(); res.Failed {
				b.Fatal(res.Err)
			}
			got := 0
			for got < chunks*chunkSize {
				ch, ok := <-dc.Outputs()
				if !ok {
					b.Fatal("output channel closed")
				}
				got += len(ch.Data)
			}
		}
		b.StopTimer()
		mb := float64(b.N) * chunks * chunkSize / (1 << 20)
		b.ReportMetric(mb/b.Elapsed().Seconds(), "MB/s")
	}
	b.Run("raw", func(b *testing.B) { run(b, false, false) })
	b.Run("decode", func(b *testing.B) { run(b, true, false) })
	b.Run("json-client", func(b *testing.B) { run(b, false, true) })
}

// BenchmarkStageRelay measures stage-payload ingest through the data plane:
// one 256 KiB file per iteration, client -> service -> 4 worker caches,
// waiting for the staged ack. The binary client carries the payload as raw
// length-prefixed bytes; the json variant pays base64-in-JSON on the same
// path (the v1 wire), which is the cost the v2.1 cold-kind codec removes.
func BenchmarkStageRelay(b *testing.B) {
	const fileSize = 256 << 10
	run := func(b *testing.B, clientJSON bool) {
		runner := hydra.NewFuncRunner()
		svc, err := coasters.NewService(coasters.Config{
			Provider: &coasters.LocalProvider{Runner: runner, CacheDir: b.TempDir()},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer svc.Close()
		if err := svc.EnsureWorkers(context.Background(), 4); err != nil {
			b.Fatal(err)
		}
		addr, err := svc.ServeData("")
		if err != nil {
			b.Fatal(err)
		}
		dc, err := coasters.DialData(addr, clientJSON)
		if err != nil {
			b.Fatal(err)
		}
		defer dc.Close()
		data := bytes.Repeat([]byte{0x7F}, fileSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := dc.Stage(fmt.Sprintf("f%d.bin", i), data, 10*time.Second); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		mb := float64(b.N) * fileSize / (1 << 20)
		b.ReportMetric(mb/b.Elapsed().Seconds(), "MB/s")
	}
	b.Run("binary", func(b *testing.B) { run(b, false) })
	b.Run("json-client", func(b *testing.B) { run(b, true) })
}

// nullAsyncExecutor counts invocations and completes them immediately, so
// BenchmarkSwiftGenerate isolates the script layer: parse-once task
// production with zero dispatch or execution cost.
type nullAsyncExecutor struct{ n atomic.Int64 }

func (x *nullAsyncExecutor) Execute(ctx context.Context, inv swiftlang.AppInvocation) error {
	x.n.Add(1)
	return nil
}

func (x *nullAsyncExecutor) ExecuteAsync(ctx context.Context, inv swiftlang.AppInvocation, done func(error)) {
	x.n.Add(1)
	done(nil)
}

// BenchmarkSwiftGenerate measures script-side task throughput of the 100k
// generator script (testdata/gen.swift) under the tree-walking interpreter
// and the static-dataflow compiler. The compiled mode's tasks/s is the
// headline: it must hold >=5x the interpreter (the BENCH_6 gate).
func BenchmarkSwiftGenerate(b *testing.B) {
	src, err := os.ReadFile("internal/swiftlang/testdata/gen.swift")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := swiftlang.Parse(string(src))
	if err != nil {
		b.Fatal(err)
	}
	const tasks = 100000
	for _, mode := range []struct {
		name    string
		compile bool
	}{{"interp", false}, {"compiled", true}} {
		b.Run(fmt.Sprintf("%s/tasks=%d", mode.name, tasks), func(b *testing.B) {
			args := map[string]string{"n": fmt.Sprint(tasks)}
			wd := b.TempDir()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ex := &nullAsyncExecutor{}
				err := swiftlang.Run(context.Background(), prog, swiftlang.Config{
					Executor: ex, WorkDir: wd, Args: args, Compile: mode.compile,
				})
				if err != nil {
					b.Fatal(err)
				}
				if got := ex.n.Load(); got != tasks {
					b.Fatalf("generated %d tasks, want %d", got, tasks)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(tasks)*float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
		})
	}
}

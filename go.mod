module jets

go 1.22

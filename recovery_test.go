package jets

// Crash-recovery integration test (ISSUE 7): a dispatcher process is killed
// with SIGKILL mid-workload and restarted over the same journal directory.
// Reconnecting pilot-job workers (held in the parent test process, so their
// execution counts survive the crash) must re-register against the restarted
// service and every submitted job must still run to completion.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jets/internal/core"
	"jets/internal/dispatch"
	"jets/internal/hydra"
	"jets/internal/journal"
	"jets/internal/worker"
)

const crashJobs = 60

// helperCrashDispatcher is the child process: a journaled dispatcher with no
// local workers that announces its listen address on stdout, submits the
// workload, and waits — until the parent kills it. JETS_CRASH_HOT, when set,
// caps the hot queue window so most of the workload crashes with its specs in
// the on-disk spill store rather than in memory.
func helperCrashDispatcher() int {
	hot, _ := strconv.Atoi(os.Getenv("JETS_CRASH_HOT"))
	eng, err := core.NewEngine(core.Options{
		ListenAddr:   "127.0.0.1:0",
		DataDir:      os.Getenv("JETS_CRASH_DIR"),
		HotQueueJobs: hot,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash helper:", err)
		return 1
	}
	fmt.Printf("ADDR %s\n", eng.Addr())
	jobs := make([]dispatch.Job, crashJobs)
	for i := range jobs {
		id := fmt.Sprintf("crash-%03d", i)
		jobs[i] = dispatch.Job{
			Spec: hydra.JobSpec{
				JobID: id, NProcs: 1,
				Cmd: "crash-sleep", Args: []string{"20", id},
			},
			Type: dispatch.Sequential,
		}
	}
	handles, err := eng.SubmitBatch(jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash helper submit:", err)
		return 1
	}
	for _, h := range handles {
		h.Wait()
	}
	return 0
}

func TestCrashRecoveryKill9(t *testing.T) { runCrashRecoveryKill9(t, 0) }

// TestCrashRecoveryKill9Spilled is the same crash, but with a one-job hot
// window: nearly the whole workload's specs live in the spill store on both
// sides of the kill, so recovery must rebuild (and re-run) a cold backlog.
func TestCrashRecoveryKill9Spilled(t *testing.T) { runCrashRecoveryKill9(t, 1) }

func runCrashRecoveryKill9(t *testing.T, hot int) {
	if testing.Short() {
		t.Skip("forks a real dispatcher process")
	}
	dir := t.TempDir()

	cmd := exec.Command(os.Args[0], "-test.run=TestMain")
	cmd.Env = append(os.Environ(),
		"JETS_HELPER=crash-dispatcher",
		"JETS_CRASH_DIR="+dir,
		fmt.Sprintf("JETS_CRASH_HOT=%d", hot),
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	var addr string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if s, ok := strings.CutPrefix(sc.Text(), "ADDR "); ok {
			addr = s
			break
		}
	}
	if addr == "" {
		t.Fatalf("child never announced its address: %v", sc.Err())
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	// The workers live in the parent so their per-job execution counts span
	// the crash. Reconnect is on: the same agents must serve both lives of
	// the dispatcher.
	runner := hydra.NewFuncRunner()
	var mu sync.Mutex
	execs := map[string]int{}
	var total atomic.Int64
	runner.Register("crash-sleep", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		ms, _ := strconv.Atoi(args[0])
		time.Sleep(time.Duration(ms) * time.Millisecond)
		mu.Lock()
		execs[args[1]]++
		mu.Unlock()
		total.Add(1)
		return 0
	})
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		w, err := worker.New(worker.Config{
			ID: fmt.Sprintf("crash-w%d", i), Cores: 1,
			DispatcherAddr:    addr,
			Runner:            runner,
			HeartbeatInterval: 50 * time.Millisecond,
			Reconnect:         true,
			ReconnectBackoff:  20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() { defer wg.Done(); w.Run(wctx) }()
	}
	defer wg.Wait()
	defer wcancel()

	// Let the first life make real progress, then kill it without warning.
	deadline := time.Now().Add(30 * time.Second)
	for total.Load() < 15 {
		if time.Now().After(deadline) {
			t.Fatalf("first life stalled at %d executions", total.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no shutdown path runs
		t.Fatal(err)
	}
	cmd.Wait()

	// Second life: same address, same journal directory, this process.
	var eng *core.Engine
	deadline = time.Now().Add(10 * time.Second)
	for {
		eng, err = core.NewEngine(core.Options{ListenAddr: addr, DataDir: dir, HotQueueJobs: hot})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer eng.Close()
	if rerr := eng.RecoveryError(); rerr != nil {
		t.Fatalf("recovery error: %v", rerr)
	}
	recovered := eng.RecoveredJobs()
	if len(recovered) == 0 {
		t.Fatal("restart recovered no jobs")
	}
	if hot > 0 && eng.Dispatcher().Stats().JobsSpilled == 0 {
		t.Fatal("spill variant: second life recovered the backlog without spilling")
	}
	t.Logf("recovered %d jobs after %d pre-crash executions", len(recovered), total.Load())

	for _, h := range recovered {
		select {
		case <-h.Done():
		case <-time.After(60 * time.Second):
			t.Fatalf("recovered job %s never completed", h.JobID())
		}
		if res, ok := h.TryResult(); !ok || res.Failed {
			t.Fatalf("recovered job %s failed: %+v", h.JobID(), res)
		}
	}

	// Every job ran at least once across the two lives (at-least-once
	// execution; completion accounting is deduplicated by the journal).
	mu.Lock()
	for i := 0; i < crashJobs; i++ {
		id := fmt.Sprintf("crash-%03d", i)
		if execs[id] == 0 {
			t.Errorf("job %s never executed", id)
		}
	}
	mu.Unlock()

	// The reconnecting workers re-registered with the second life.
	deadline = time.Now().Add(5 * time.Second)
	for eng.Dispatcher().Workers() < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d workers re-registered", eng.Dispatcher().Workers())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// After a clean close, a fresh replay must show zero live jobs and
	// exactly one Completed record per job the second life owned.
	eng.Close()
	wal, err := journal.OpenWAL(journal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	live := map[string]bool{}
	completed := map[string]int{}
	err = wal.Replay(func(r journal.Record) error {
		switch r.Kind {
		case journal.Submitted:
			live[r.JobID] = true
		case journal.Completed:
			delete(live, r.JobID)
			completed[r.JobID]++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 0 {
		t.Fatalf("%d jobs still live in the journal after recovery: %v", len(live), keys(live))
	}
	for id, n := range completed {
		if n != 1 {
			t.Errorf("job %s completed %d times in the durable log", id, n)
		}
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

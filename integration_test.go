package jets

// Integration tests exercising the real-process path end to end: the test
// binary re-executes itself as the MPI application (hydra.ExecRunner), so a
// JETS-launched job consists of genuine OS processes that bootstrap through
// the PMI environment and wire up over real sockets — exactly what happens
// on a deployed cluster.

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"jets/internal/core"
	"jets/internal/dispatch"
	"jets/internal/hydra"
	"jets/internal/mpi"
)

// TestMain diverts helper invocations before the test framework runs.
func TestMain(m *testing.M) {
	switch os.Getenv("JETS_HELPER") {
	case "":
		os.Exit(m.Run())
	case "mpi-app":
		os.Exit(helperMPIApp())
	case "seq-app":
		fmt.Println("sequential helper ran")
		os.Exit(0)
	case "crash-dispatcher":
		os.Exit(helperCrashDispatcher())
	case "federate-instance":
		os.Exit(helperFederateInstance())
	default:
		fmt.Fprintln(os.Stderr, "unknown helper", os.Getenv("JETS_HELPER"))
		os.Exit(2)
	}
}

// helperMPIApp is the user executable: PMI bootstrap, barrier, allreduce.
func helperMPIApp() int {
	comm, err := mpi.InitEnv()
	if err != nil {
		fmt.Fprintln(os.Stderr, "init:", err)
		return 1
	}
	defer comm.Close()
	if err := comm.Barrier(); err != nil {
		return 1
	}
	sum, err := comm.AllreduceInt64(mpi.OpSum, []int64{1})
	if err != nil || int(sum[0]) != comm.Size() {
		return 1
	}
	if comm.Rank() == 0 {
		fmt.Printf("real-process allreduce ok: %d ranks\n", comm.Size())
	}
	return 0
}

func startRealEngine(t *testing.T, workers int, onOutput func(string, string, []byte)) *core.Engine {
	t.Helper()
	eng, err := core.NewEngine(core.Options{
		LocalWorkers: workers,
		Runner:       hydra.ExecRunner{},
		OnOutput:     onOutput,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return eng
}

func TestRealProcessSequentialJob(t *testing.T) {
	var mu sync.Mutex
	var out strings.Builder
	eng := startRealEngine(t, 2, func(taskID, stream string, data []byte) {
		mu.Lock()
		out.Write(data)
		mu.Unlock()
	})
	h, err := eng.Submit(dispatch.Job{
		Spec: hydra.JobSpec{
			JobID: "seq-real", NProcs: 1,
			Cmd: os.Args[0],
			Env: []string{"JETS_HELPER=seq-app"},
		},
		Type: dispatch.Sequential,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := h.Wait()
	if res.Failed {
		t.Fatalf("job failed: %+v", res)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		s := out.String()
		mu.Unlock()
		if strings.Contains(s, "sequential helper ran") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("output %q", s)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRealProcessMPIJob(t *testing.T) {
	if testing.Short() {
		t.Skip("forks real processes")
	}
	var mu sync.Mutex
	var out strings.Builder
	eng := startRealEngine(t, 4, func(taskID, stream string, data []byte) {
		mu.Lock()
		out.Write(data)
		mu.Unlock()
	})
	h, err := eng.Submit(dispatch.Job{
		Spec: hydra.JobSpec{
			JobID: "mpi-real", NProcs: 4,
			Cmd: os.Args[0],
			Env: []string{"JETS_HELPER=mpi-app"},
		},
		Type: dispatch.MPI,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := h.Wait()
	if res.Failed {
		mu.Lock()
		t.Fatalf("job failed: %+v\noutput: %s", res, out.String())
	}
	if len(res.TaskResults) != 4 {
		t.Fatalf("results %d", len(res.TaskResults))
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		s := out.String()
		mu.Unlock()
		if strings.Contains(s, "real-process allreduce ok: 4 ranks") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("output %q", s)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRealProcessBatchOfMPIJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("forks real processes")
	}
	eng := startRealEngine(t, 6, nil)
	var handles []*dispatch.Handle
	for i := 0; i < 4; i++ {
		h, err := eng.Submit(dispatch.Job{
			Spec: hydra.JobSpec{
				JobID: fmt.Sprintf("batch-%d", i), NProcs: 2 + i%2,
				Cmd: os.Args[0],
				Env: []string{"JETS_HELPER=mpi-app"},
			},
			Type: dispatch.MPI,
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	for i, h := range handles {
		if res := h.Wait(); res.Failed {
			t.Fatalf("job %d failed: %+v", i, res)
		}
	}
	st := eng.Dispatcher().Stats()
	if st.JobsCompleted != 4 || st.JobsFailed != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestRealProcessFailurePropagates(t *testing.T) {
	eng := startRealEngine(t, 1, nil)
	h, err := eng.Submit(dispatch.Job{
		Spec: hydra.JobSpec{
			JobID: "bad-helper", NProcs: 1,
			Cmd: os.Args[0],
			Env: []string{"JETS_HELPER=does-not-exist"},
		},
		Type: dispatch.Sequential,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res := h.Wait(); !res.Failed {
		t.Fatal("bad helper reported success")
	}
}

// TestBatchThroughInputFile runs the paper's input format with real
// processes, covering the full cmd/jets code path.
func TestBatchThroughInputFile(t *testing.T) {
	if testing.Short() {
		t.Skip("forks real processes")
	}
	eng := startRealEngine(t, 4, nil)
	input := fmt.Sprintf("MPI: 3 %s\nMPI: 2 %s\nSEQ: %s\n", os.Args[0], os.Args[0], os.Args[0])
	// Inject helper env through job specs: ParseInput has no env syntax, so
	// submit parsed jobs with env added.
	jobs, err := core.ParseInput(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Type == dispatch.MPI {
			jobs[i].Spec.Env = []string{"JETS_HELPER=mpi-app"}
		} else {
			jobs[i].Spec.Env = []string{"JETS_HELPER=seq-app"}
		}
	}
	rep, err := eng.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() != 0 {
		t.Fatalf("failed=%d: %+v", rep.Failed(), rep.Results)
	}
	if rep.Summary.Jobs != 3 {
		t.Fatalf("summary %+v", rep.Summary)
	}
}

// Package jets is a from-scratch Go reproduction of JETS, the
// many-parallel-task computing (MPTC) middleware of Wozniak, Wilde, and
// Katz ("JETS: Language and System Support for Many-Parallel-Task
// Computing", ICPP 2011; journal version J Grid Computing 11:341-360,
// 2013).
//
// JETS runs very large batches of short, tightly coupled MPI jobs inside a
// single scheduler allocation: persistent pilot-job workers pull tasks from
// a highly concurrent central dispatcher, which transforms each MPI job
// specification into a set of process-manager proxy launches
// (MPICH2/Hydra's launcher=manual mechanism) and assembles worker groups
// dynamically, first-come-first-served.
//
// The repository implements the complete stack:
//
//   - internal/dispatch, internal/worker, internal/core — the JETS
//     dispatcher, pilot agents, and stand-alone engine (the paper's primary
//     contribution);
//   - internal/hydra, internal/pmi — the mpiexec/proxy process manager and
//     the PMI-1 protocol it serves;
//   - internal/mpi — a pure-Go MPI (point-to-point with tag matching,
//     collectives, MPI_Wtime) over channel and TCP transports;
//   - internal/swiftlang, internal/dataflow, internal/coasters — the
//     mini-Swift dataflow language and CoasterService integration;
//   - internal/namd, internal/rem — the synthetic NAMD application and the
//     replica exchange method;
//   - internal/event, internal/simjets, internal/topology, internal/fsim —
//     the discrete-event simulator that replays the paper's Blue Gene/P
//     scale experiments in virtual time.
//
// bench_test.go regenerates every evaluation figure; see DESIGN.md for the
// system inventory and EXPERIMENTS.md for paper-vs-measured results.
package jets

package jets

// Federated crash-recovery integration test (ISSUE 9): four dispatcher
// instances run as real child processes behind an in-parent work router; one
// instance is killed with SIGKILL mid-workload and restarted over the same
// journal directory and address. The router's re-attach reconciliation plus
// the instance's own WAL replay must complete every job exactly once per
// router handle, with the parent's routing-table journal ending clean.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"jets/internal/dispatch"
	"jets/internal/hydra"
	"jets/internal/journal"
	"jets/internal/router"
	"jets/internal/worker"
)

const fedJobs = 60

// helperFederateInstance is the child process: one journaled dispatcher
// instance with no workers of its own. It announces its listen address on
// stdout and then blocks until killed. JETS_FED_ADDR pins the listen address
// (the restarted second life must rebind the first life's port, so it
// retries the bind while the kernel releases it). JETS_FED_HOT, when set,
// caps the hot queue window so the instance's backlog crashes with its specs
// in a durable spill store next to the journal.
func helperFederateInstance() int {
	jdir := os.Getenv("JETS_FED_DIR")
	wal, err := journal.OpenWAL(journal.Options{Dir: jdir})
	if err != nil {
		fmt.Fprintln(os.Stderr, "federate helper:", err)
		return 1
	}
	hot, _ := strconv.Atoi(os.Getenv("JETS_FED_HOT"))
	addr := os.Getenv("JETS_FED_ADDR")
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var d *dispatch.Dispatcher
	var bound string
	deadline := time.Now().Add(10 * time.Second)
	for {
		d = dispatch.New(dispatch.Config{
			Addr:         addr,
			Instance:     os.Getenv("JETS_FED_NAME"),
			Journal:      wal,
			HotQueueJobs: hot,
			SpillDir:     filepath.Join(jdir, "spill"),
		})
		bound, err = d.Start()
		if err == nil {
			break
		}
		d.Close()
		if time.Now().After(deadline) {
			fmt.Fprintln(os.Stderr, "federate helper bind:", err)
			return 1
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("ADDR %s\n", bound)
	select {} // the parent kills us; there is no clean exit
}

// startFedInstance forks one instance child and returns its address.
func startFedInstance(t *testing.T, name, dir, addr string, hot int) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestMain")
	cmd.Env = append(os.Environ(),
		"JETS_HELPER=federate-instance",
		"JETS_FED_NAME="+name,
		"JETS_FED_DIR="+dir,
		"JETS_FED_ADDR="+addr,
		fmt.Sprintf("JETS_FED_HOT=%d", hot),
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	var bound string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if s, ok := strings.CutPrefix(sc.Text(), "ADDR "); ok {
			bound = s
			break
		}
	}
	if bound == "" {
		cmd.Process.Kill()
		t.Fatalf("instance %s never announced its address: %v", name, sc.Err())
	}
	go io.Copy(io.Discard, stdout)
	return cmd, bound
}

func TestFederatedCrashRecoveryKill9(t *testing.T) { runFederatedCrashRecoveryKill9(t, 0) }

// TestFederatedCrashRecoveryKill9Spilled is the same federated crash with a
// one-job hot window per instance: the victim's backlog crashes with nearly
// every spec in the on-disk spill store, and its second life must recover the
// cold queue from there.
func TestFederatedCrashRecoveryKill9Spilled(t *testing.T) { runFederatedCrashRecoveryKill9(t, 1) }

func runFederatedCrashRecoveryKill9(t *testing.T, hot int) {
	if testing.Short() {
		t.Skip("forks real dispatcher processes")
	}
	const nInst = 4
	routerDir := t.TempDir()

	cmds := make([]*exec.Cmd, nInst)
	addrs := make([]string, nInst)
	dirs := make([]string, nInst)
	for i := 0; i < nInst; i++ {
		dirs[i] = t.TempDir()
		cmds[i], addrs[i] = startFedInstance(t, fmt.Sprintf("inst%d", i), dirs[i], "", hot)
	}
	defer func() {
		for _, c := range cmds {
			if c != nil && c.Process != nil {
				c.Process.Kill()
				c.Wait()
			}
		}
	}()

	// Workers live in the parent so execution counts span the crash; each
	// pair is pinned to one instance and reconnects to it after the kill.
	runner := hydra.NewFuncRunner()
	var mu sync.Mutex
	execs := map[string]int{}
	var total atomic.Int64
	runner.Register("fed-sleep", func(ctx context.Context, args []string, env map[string]string, stdout io.Writer) int {
		ms, _ := strconv.Atoi(args[0])
		time.Sleep(time.Duration(ms) * time.Millisecond)
		mu.Lock()
		execs[args[1]]++
		mu.Unlock()
		total.Add(1)
		return 0
	})
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	var wg sync.WaitGroup
	for i := 0; i < 2*nInst; i++ {
		w, err := worker.New(worker.Config{
			ID: fmt.Sprintf("fed-w%d", i), Cores: 1,
			DispatcherAddr:    addrs[i%nInst],
			Runner:            runner,
			HeartbeatInterval: 50 * time.Millisecond,
			Reconnect:         true,
			ReconnectBackoff:  20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() { defer wg.Done(); w.Run(wctx) }()
	}
	defer wg.Wait()
	defer wcancel()

	// The router federates the four child processes over the wire, with its
	// own routing-table journal.
	rwal, err := journal.OpenWAL(journal.Options{Dir: routerDir})
	if err != nil {
		t.Fatal(err)
	}
	r, err := router.New(router.Config{
		Peers:     addrs,
		Journal:   rwal,
		LoadEvery: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	deadline := time.Now().Add(15 * time.Second)
	for r.ConnectedMembers() < nInst {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d peers attached", r.ConnectedMembers(), nInst)
		}
		time.Sleep(5 * time.Millisecond)
	}

	handles := make([]*dispatch.Handle, fedJobs)
	for i := range handles {
		id := fmt.Sprintf("fed-%03d", i)
		handles[i], err = r.Submit(dispatch.Job{
			Spec: hydra.JobSpec{
				JobID: id, NProcs: 1,
				Cmd: "fed-sleep", Args: []string{"50", id},
			},
			Type: dispatch.Sequential,
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// Let the fleet make real progress, then SIGKILL one instance.
	deadline = time.Now().Add(30 * time.Second)
	for total.Load() < 15 {
		if time.Now().After(deadline) {
			t.Fatalf("federation stalled at %d executions", total.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	victim := 1
	if err := cmds[victim].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmds[victim].Wait()
	t.Logf("killed %s after %d executions", addrs[victim], total.Load())

	// Second life: same journal directory, same address. The helper retries
	// the bind until the port frees up; the router's peer link re-attaches
	// and reconciles, and the pinned workers reconnect.
	cmds[victim], _ = startFedInstance(t, fmt.Sprintf("inst%d", victim), dirs[victim], addrs[victim], hot)

	for i, h := range handles {
		select {
		case <-h.Done():
		case <-time.After(90 * time.Second):
			t.Fatalf("job fed-%03d never completed after the crash", i)
		}
		if res, ok := h.TryResult(); !ok || res.Failed {
			t.Fatalf("job %s failed: %+v", res.JobID, res)
		}
	}

	// At-least-once execution across the two lives of the victim.
	mu.Lock()
	for i := 0; i < fedJobs; i++ {
		id := fmt.Sprintf("fed-%03d", i)
		if execs[id] == 0 {
			t.Errorf("job %s never executed", id)
		}
	}
	mu.Unlock()

	// Exactly-once completion in the routing-table journal: a clean close,
	// then a fresh replay must show zero live jobs and one Completed record
	// per job (re-placements after the crash journal Migrated, never a
	// second Submitted/Completed pair).
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	wal, err := journal.OpenWAL(journal.Options{Dir: routerDir})
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	live := map[string]bool{}
	completed := map[string]int{}
	err = wal.Replay(func(rec journal.Record) error {
		switch rec.Kind {
		case journal.Submitted:
			live[rec.JobID] = true
		case journal.Completed:
			delete(live, rec.JobID)
			completed[rec.JobID]++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 0 {
		t.Fatalf("%d jobs still live in the routing table after recovery: %v", len(live), keys(live))
	}
	for id, n := range completed {
		if n != 1 {
			t.Errorf("job %s completed %d times in the durable log", id, n)
		}
	}
}

// Command jets-bench regenerates every table and figure of the paper's
// evaluation (§6) and prints the series in paper order. Experiments at
// Blue Gene/P scale run on the discrete-event simulator in virtual time;
// the MPI messaging comparison (Fig. 8) and the dispatcher microbenchmarks
// run the real implementation.
//
// Usage:
//
//	jets-bench                        # all figures
//	jets-bench -figure 9              # one figure
//	jets-bench -scenario list         # named scenario sweeps
//	jets-bench -scenario sweep-10k
//	jets-bench -replay trace.jsonl    # re-execute a live dispatcher trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"jets/internal/mpi"
	"jets/internal/simjets"
	"jets/internal/simjets/scenario"
)

func main() {
	figure := flag.Int("figure", 0, "figure number to run (0 = all)")
	seed := flag.Int64("seed", 1, "simulation seed")
	scen := flag.String("scenario", "", "run a named scenario from the library ('list' to enumerate)")
	replay := flag.String("replay", "", "replay a dispatcher -trace JSON-lines file in the simulator")
	flag.Parse()

	if *scen != "" {
		runScenario(*scen, *seed)
		return
	}
	if *replay != "" {
		runReplay(*replay, *seed)
		return
	}

	figs := map[int]func(int64){
		6: fig06, 7: fig07, 8: fig08, 9: fig09, 10: fig10,
		11: fig11, 12: fig12, 13: fig13, 15: fig15, 18: fig18,
	}
	if *figure != 0 {
		fn, ok := figs[*figure]
		if !ok {
			fmt.Fprintf(os.Stderr, "jets-bench: no experiment for figure %d\n", *figure)
			os.Exit(1)
		}
		fn(*seed)
		return
	}
	for _, n := range []int{6, 7, 8, 9, 10, 11, 12, 13, 15, 18} {
		figs[n](*seed)
	}
}

func header(s string) { fmt.Printf("\n=== %s ===\n", s) }

// runScenario executes one library scenario and prints its Result as JSON
// (deterministic for a given seed) plus the wall clock on stderr.
func runScenario(name string, seed int64) {
	if name == "list" {
		fmt.Printf("%-16s %10s %10s %8s %s\n", "name", "workers", "duration", "tenants", "storms")
		for _, sc := range scenario.Library() {
			wpn := sc.WorkersPerNode
			if wpn < 1 {
				wpn = 1
			}
			fmt.Printf("%-16s %10d %10s %8d %d\n", sc.Name, sc.Nodes*wpn, sc.Duration, len(sc.Tenants), len(sc.Storms))
		}
		return
	}
	sc, ok := scenario.Lookup(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "jets-bench: unknown scenario %q (try -scenario list)\n", name)
		os.Exit(1)
	}
	res := scenario.Run(sc, seed)
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "jets-bench:", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
	fmt.Fprintf(os.Stderr, "wall clock: %s (%.2fM events/s)\n",
		res.Wall.Round(time.Millisecond), float64(res.Events)/res.Wall.Seconds()/1e6)
}

// runReplay parses a recorded dispatcher trace and re-executes it in the
// simulator, printing the calibration report.
func runReplay(path string, seed int64) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jets-bench:", err)
		os.Exit(1)
	}
	defer f.Close()
	tr, err := simjets.ReplayTrace(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jets-bench:", err)
		os.Exit(1)
	}
	rep := tr.Run(seed)
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "jets-bench:", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}

func fig06(seed int64) {
	header("Fig 6 — JETS sequential task rate, BG/P (sim)")
	fmt.Printf("%8s %8s %12s\n", "nodes", "cores", "jobs/s")
	for _, r := range simjets.Fig06SequentialRate([]int{16, 32, 64, 128, 256, 512, 1024}, 20, seed) {
		fmt.Printf("%8d %8d %12.0f\n", r.Nodes, r.Cores, r.JobsPerSec)
	}
	fmt.Printf("ideal (1 node, no JETS): %.0f launches/s/node\n", simjets.Fig06Ideal())
}

func fig07(seed int64) {
	header("Fig 7 — MPI task launch, cluster setting, 1 s tasks (sim)")
	fmt.Printf("%8s %-14s %12s\n", "alloc", "mode", "utilization")
	for _, r := range simjets.Fig07Cluster([]int{4, 8, 16, 32, 64}, seed) {
		fmt.Printf("%8d %-14s %11.1f%%\n", r.Alloc, r.Mode, 100*r.Utilization)
	}
}

func fig08(seed int64) {
	header("Fig 8 — MPI ping-pong: native (channel) vs MPICH/sockets (TCP), real measurement")
	fmt.Printf("%10s %16s %16s %8s\n", "bytes", "native t/msg", "sockets t/msg", "ratio")
	sizes := []int{1, 64, 1024, 16 << 10, 256 << 10, 4 << 20}
	for _, size := range sizes {
		nat := pingpong(size, false)
		soc := pingpong(size, true)
		fmt.Printf("%10d %16s %16s %7.1fx\n", size, nat, soc, float64(soc)/float64(nat))
	}
	_ = seed
}

// pingpong measures one-way message time for the given payload size over
// the chosen transport, averaging over a fixed round count.
func pingpong(size int, tcp bool) time.Duration {
	rounds := 2000
	if size >= 256<<10 {
		rounds = 100
	}
	payload := make([]byte, size)
	var elapsed time.Duration
	body := func(c *mpi.Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		start := time.Now()
		for i := 0; i < rounds; i++ {
			if c.Rank() == 0 {
				if err := c.Send(1, 1, payload); err != nil {
					return err
				}
				if _, err := c.Recv(1, 2); err != nil {
					return err
				}
			} else {
				if _, err := c.Recv(0, 1); err != nil {
					return err
				}
				if err := c.Send(0, 2, payload); err != nil {
					return err
				}
			}
		}
		if c.Rank() == 0 {
			elapsed = time.Since(start)
		}
		return nil
	}
	var err error
	if tcp {
		err = mpi.RunTCP(2, body)
	} else {
		err = mpi.RunLocal(2, body)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pingpong:", err)
		os.Exit(1)
	}
	return elapsed / time.Duration(2*rounds)
}

func fig09(seed int64) {
	header("Fig 9 — MPI task launch, BG/P, 10 s tasks, 1 proc/node (sim)")
	fmt.Printf("%8s %-10s %12s\n", "alloc", "task size", "utilization")
	for _, r := range simjets.Fig09BGP([]int{256, 512, 1024}, []int{4, 8, 64}, seed) {
		fmt.Printf("%8d %-10s %11.1f%%\n", r.Alloc, r.Mode, 100*r.Utilization)
	}
}

func fig10(seed int64) {
	header("Fig 10 — faulty setting: 32 workers, kill 1 per 10 s (sim)")
	tr := simjets.Fig10Faulty(32, 10*time.Second, 5*time.Second, seed)
	fmt.Printf("%8s %16s %14s\n", "t (s)", "nodes available", "running jobs")
	for t := 0 * time.Second; t <= 330*time.Second; t += 20 * time.Second {
		fmt.Printf("%8.0f %16.0f %14.0f\n", t.Seconds(), tr.Alive.At(t), tr.Running.At(t))
	}
	fmt.Printf("kills injected: %d\n", len(tr.KillTimes))
}

func fig11(seed int64) {
	header("Fig 11 — NAMD wall-time distribution, 1,536 4-proc jobs")
	h := simjets.Fig11Histogram(1536, seed)
	fmt.Print(h.String())
	fmt.Printf("n=%d mean=%.1fs min=%.1fs max=%.1fs\n", h.N, h.Mean(), h.Min(), h.Max())
}

func fig12(seed int64) {
	header("Fig 12 — NAMD/JETS utilization, BG/P (sim)")
	fmt.Printf("%8s %12s\n", "alloc", "utilization")
	for _, r := range simjets.Fig12NAMD([]int{256, 512, 1024}, seed) {
		fmt.Printf("%8d %11.1f%%\n", r.Alloc, 100*r.Utilization)
	}
}

func fig13(seed int64) {
	header("Fig 13 — NAMD/JETS load level, full rack (sim)")
	s := simjets.Fig13LoadLevel(seed)
	span := s.T[len(s.T)-1]
	fmt.Printf("%8s %12s\n", "t (s)", "busy procs")
	step := span / 16
	if step <= 0 {
		step = time.Second
	}
	for t := time.Duration(0); t <= span; t += step {
		fmt.Printf("%8.0f %12.0f\n", t.Seconds(), s.At(t))
	}
	fmt.Printf("peak=%0.f procs, span=%.0fs\n", s.Max(), span.Seconds())
}

func fig15(seed int64) {
	header("Fig 15 — Swift/Coasters synthetic workloads, Eureka, 10 s tasks (sim)")
	fmt.Printf("%8s %10s %6s %12s\n", "alloc", "nodes/job", "ppn", "utilization")
	for _, r := range simjets.Fig15Swift([]int{16, 32, 64}, []int{1, 2, 4, 8}, []int{1, 2, 4, 8}, seed) {
		fmt.Printf("%8d %10d %6d %11.1f%%\n", r.Alloc, r.NodesPerJob, r.PPN, 100*r.Utilization)
	}
}

func fig18(seed int64) {
	header("Fig 18a — REM/Swift, single-process NAMD (sim)")
	fmt.Printf("%8s %12s\n", "alloc", "utilization")
	for _, r := range simjets.Fig18REM([]int{4, 8, 16, 32, 64}, true, seed) {
		fmt.Printf("%8d %11.1f%%\n", r.Alloc, 100*r.Utilization)
	}
	header("Fig 18b — REM/Swift, MPI NAMD, PPN 8 (sim)")
	fmt.Printf("%8s %12s\n", "alloc", "utilization")
	for _, r := range simjets.Fig18REM([]int{8, 16, 32, 64}, false, seed) {
		fmt.Printf("%8d %11.1f%%\n", r.Alloc, 100*r.Utilization)
	}
}

// Command jets-worker is the pilot-job worker agent started on compute
// nodes by allocation scripts (paper §5). It connects to a JETS dispatcher,
// requests work persistently, runs tasks as subprocesses, and streams their
// output back through the service.
//
// Usage:
//
//	jets-worker -dispatcher login1:7001 -id $(hostname) -cores 4 \
//	            -cache /dev/shm/jets
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"jets/internal/hydra"
	"jets/internal/obs"
	"jets/internal/worker"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jets-worker:", err)
		os.Exit(1)
	}
}

func run() error {
	dispatcher := flag.String("dispatcher", "", "dispatcher address host:port (required)")
	id := flag.String("id", "", "worker id (default hostname-pid)")
	cores := flag.Int("cores", 1, "cores to report")
	cache := flag.String("cache", "", "node-local cache directory for staged files")
	coord := flag.String("coord", "", "interconnect coordinates, e.g. 3,0,7 (first plane keys the dispatcher's scheduling shard)")
	heartbeat := flag.Duration("heartbeat", time.Second, "heartbeat interval")
	jsonWire := flag.Bool("json-wire", false, "disable the binary wire fast path (v1 JSON frames only)")
	reconnect := flag.Bool("reconnect", false, "redial and re-register after a lost dispatcher connection (capped exponential backoff), surviving dispatcher restarts")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof, and /healthz on this address (empty disables)")
	flag.Parse()

	if *dispatcher == "" {
		return fmt.Errorf("-dispatcher is required")
	}
	if *id == "" {
		host, _ := os.Hostname()
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	var coords []int
	if *coord != "" {
		for _, part := range strings.Split(*coord, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad -coord %q: %v", *coord, err)
			}
			coords = append(coords, v)
		}
	}
	if *cache != "" {
		if err := os.MkdirAll(*cache, 0o755); err != nil {
			return err
		}
	}
	w, err := worker.New(worker.Config{
		ID:                *id,
		Cores:             *cores,
		Coord:             coords,
		DispatcherAddr:    *dispatcher,
		Runner:            hydra.ExecRunner{},
		HeartbeatInterval: *heartbeat,
		CacheDir:          *cache,
		JSONOnly:          *jsonWire,
		Reconnect:         *reconnect,
	})
	if err != nil {
		return err
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		worker.RegisterMetrics(reg)
		hydra.RegisterMetrics(reg)
		srv, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		defer srv.Close()
		// /healthz reports 503 until the worker has registered with its
		// dispatcher (and again after the connection drops), so allocation
		// scripts can probe pilot-job liveness.
		srv.SetHealth(w.Healthy)
		fmt.Printf("jets-worker: metrics on http://%s/metrics (also /healthz)\n", srv.Addr())
	}
	fmt.Printf("jets-worker: %s -> %s\n", *id, *dispatcher)
	return w.Run(ctx)
}

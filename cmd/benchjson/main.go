// Command benchjson converts `go test -bench` output into a stable JSON
// document mapping benchmark name to its metrics, so CI can archive
// perf-trajectory snapshots (BENCH_<n>.json) and diffs stay reviewable.
// It also compares two snapshots and fails on throughput regressions, the
// perf-trajectory gate.
//
// Usage:
//
//	go test -run '^$' -bench . | benchjson -out BENCH_1.json
//	benchjson -in bench.txt -out BENCH_1.json
//	benchjson -diff BENCH_1.json BENCH_2.json            # exit 1 on >20% drop
//	benchjson -diff -match BenchmarkDispatchThroughput \
//	          -metric jobs/s -threshold 0.20 OLD.json NEW.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark's parsed metrics, e.g. {"ns/op": 839.6,
// "allocs/op": 15, "iterations": 30000}.
type result map[string]float64

func main() {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "", "JSON destination (default stdout)")
	diffMode := flag.Bool("diff", false, "compare two snapshot files (args: OLD.json NEW.json); exit 1 on regression")
	match := flag.String("match", "BenchmarkDispatchThroughput", "diff: substring filter on benchmark names")
	metric := flag.String("metric", "jobs/s", "diff: higher-is-better metric to compare")
	threshold := flag.Float64("threshold", 0.20, "diff: relative drop that counts as a regression")
	flag.Parse()

	if *diffMode {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-diff needs exactly two snapshot files, got %d", flag.NArg()))
		}
		old, err := loadSnapshot(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		cur, err := loadSnapshot(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		report, regressed := diff(old, cur, *match, *metric, *threshold)
		fmt.Print(report)
		if regressed {
			fmt.Fprintf(os.Stderr, "benchjson: %s regression beyond %.0f%% between %s and %s\n",
				*metric, *threshold*100, flag.Arg(0), flag.Arg(1))
			os.Exit(1)
		}
		return
	}

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	parsed, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(parsed) == 0 {
		fatal(fmt.Errorf("no benchmark lines found"))
	}
	doc, err := render(parsed)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		os.Stdout.Write(doc)
		return
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

func loadSnapshot(path string) (map[string]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap map[string]result
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return snap, nil
}

// diff compares the metric across benchmarks (filtered by substring match)
// present in both snapshots, treating higher as better. It reports whether
// any compared benchmark dropped by more than threshold, or vanished from
// the new snapshot entirely (disappearing coverage also fails the gate).
func diff(old, cur map[string]result, match, metric string, threshold float64) (string, bool) {
	names := make([]string, 0, len(old))
	for n := range old {
		if strings.Contains(n, match) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	regressed := false
	for _, n := range names {
		was, ok := old[n][metric]
		if !ok || was <= 0 {
			continue
		}
		now, present := cur[n]
		if !present {
			fmt.Fprintf(&b, "MISSING  %-55s %s gone from new snapshot\n", n, metric)
			regressed = true
			continue
		}
		is, ok := now[metric]
		if !ok {
			fmt.Fprintf(&b, "MISSING  %-55s metric %q gone from new snapshot\n", n, metric)
			regressed = true
			continue
		}
		delta := (is - was) / was
		verdict := "ok"
		if -delta > threshold {
			verdict = "REGRESSED"
			regressed = true
		}
		fmt.Fprintf(&b, "%-9s%-55s %s %.0f -> %.0f (%+.1f%%)\n", verdict, n, metric, was, is, 100*delta)
	}
	if len(names) == 0 {
		fmt.Fprintf(&b, "no benchmarks matching %q in old snapshot\n", match)
	}
	return b.String(), regressed
}

// parse extracts Benchmark lines. The format is
//
//	BenchmarkName-8   30000   6227 ns/op   26 allocs/op ...
//
// i.e. name, iteration count, then value/unit pairs.
func parse(r io.Reader) (map[string]result, error) {
	res := make(map[string]result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		// Strip the trailing -GOMAXPROCS suffix so names are stable across
		// machines.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		m := result{"iterations": iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			m[fields[i+1]] = v
		}
		res[name] = m
	}
	return res, sc.Err()
}

func render(parsed map[string]result) ([]byte, error) {
	names := make([]string, 0, len(parsed))
	for n := range parsed {
		names = append(names, n)
	}
	sort.Strings(names)
	// Ordered map emission: build JSON by hand at the top level so the
	// snapshot diffs deterministically.
	var b strings.Builder
	b.WriteString("{\n")
	for i, n := range names {
		val, err := json.Marshal(parsed[n])
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "  %q: %s", n, val)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	return []byte(b.String()), nil
}

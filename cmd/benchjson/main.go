// Command benchjson converts `go test -bench` output into a stable JSON
// document mapping benchmark name to its metrics, so CI can archive
// perf-trajectory snapshots (BENCH_<n>.json) and diffs stay reviewable.
//
// Usage:
//
//	go test -run '^$' -bench . | benchjson -out BENCH_1.json
//	benchjson -in bench.txt -out BENCH_1.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark's parsed metrics, e.g. {"ns/op": 839.6,
// "allocs/op": 15, "iterations": 30000}.
type result map[string]float64

func main() {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "", "JSON destination (default stdout)")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	parsed, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(parsed) == 0 {
		fatal(fmt.Errorf("no benchmark lines found"))
	}
	doc, err := render(parsed)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		os.Stdout.Write(doc)
		return
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parse extracts Benchmark lines. The format is
//
//	BenchmarkName-8   30000   6227 ns/op   26 allocs/op ...
//
// i.e. name, iteration count, then value/unit pairs.
func parse(r io.Reader) (map[string]result, error) {
	res := make(map[string]result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		// Strip the trailing -GOMAXPROCS suffix so names are stable across
		// machines.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		m := result{"iterations": iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			m[fields[i+1]] = v
		}
		res[name] = m
	}
	return res, sc.Err()
}

func render(parsed map[string]result) ([]byte, error) {
	names := make([]string, 0, len(parsed))
	for n := range parsed {
		names = append(names, n)
	}
	sort.Strings(names)
	// Ordered map emission: build JSON by hand at the top level so the
	// snapshot diffs deterministically.
	var b strings.Builder
	b.WriteString("{\n")
	for i, n := range names {
		val, err := json.Marshal(parsed[n])
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "  %q: %s", n, val)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	return []byte(b.String()), nil
}

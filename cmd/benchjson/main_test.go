package main

import (
	"strings"
	"testing"
)

func TestParseStripsGOMAXPROCSAndReadsMetrics(t *testing.T) {
	out := `
goos: linux
BenchmarkDispatchThroughput/binary-coalesced-8   3000   18048 ns/op   55407 jobs/s
BenchmarkProtoCodec/task/json-8   30000   5130 ns/op   1064 B/op   26 allocs/op
not a bench line
`
	parsed, err := parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 2 {
		t.Fatalf("parsed %d benchmarks", len(parsed))
	}
	m, ok := parsed["BenchmarkDispatchThroughput/binary-coalesced"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", parsed)
	}
	if m["jobs/s"] != 55407 || m["iterations"] != 3000 {
		t.Fatalf("metrics %v", m)
	}
	if parsed["BenchmarkProtoCodec/task/json"]["allocs/op"] != 26 {
		t.Fatalf("metrics %v", parsed)
	}
}

func TestDiffPassesWithinThreshold(t *testing.T) {
	old := map[string]result{
		"BenchmarkDispatchThroughput/binary-coalesced": {"jobs/s": 55407},
		"BenchmarkProtoCodec/task/json":                {"ns/op": 5130}, // filtered out by match
	}
	cur := map[string]result{
		"BenchmarkDispatchThroughput/binary-coalesced": {"jobs/s": 50000}, // -9.8%
	}
	report, regressed := diff(old, cur, "BenchmarkDispatchThroughput", "jobs/s", 0.20)
	if regressed {
		t.Fatalf("9.8%% drop flagged at 20%% threshold:\n%s", report)
	}
	if !strings.Contains(report, "ok") || strings.Contains(report, "ProtoCodec") {
		t.Fatalf("report:\n%s", report)
	}
}

func TestDiffFailsBeyondThreshold(t *testing.T) {
	old := map[string]result{
		"BenchmarkDispatchThroughput/shards=4": {"jobs/s": 60000},
	}
	cur := map[string]result{
		"BenchmarkDispatchThroughput/shards=4": {"jobs/s": 40000}, // -33%
	}
	report, regressed := diff(old, cur, "BenchmarkDispatchThroughput", "jobs/s", 0.20)
	if !regressed {
		t.Fatalf("33%% drop not flagged:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSED") {
		t.Fatalf("report:\n%s", report)
	}
}

func TestDiffFailsOnVanishedBenchmark(t *testing.T) {
	old := map[string]result{
		"BenchmarkDispatchThroughput/json-wire": {"jobs/s": 38839},
	}
	report, regressed := diff(old, map[string]result{}, "BenchmarkDispatchThroughput", "jobs/s", 0.20)
	if !regressed || !strings.Contains(report, "MISSING") {
		t.Fatalf("vanished benchmark not flagged:\n%s", report)
	}
}

func TestDiffImprovementPasses(t *testing.T) {
	old := map[string]result{
		"BenchmarkDispatchThroughput/shards=4": {"jobs/s": 55000},
	}
	cur := map[string]result{
		"BenchmarkDispatchThroughput/shards=4": {"jobs/s": 70000},
	}
	if report, regressed := diff(old, cur, "BenchmarkDispatchThroughput", "jobs/s", 0.20); regressed {
		t.Fatalf("improvement flagged as regression:\n%s", report)
	}
}

func TestRenderDeterministic(t *testing.T) {
	parsed := map[string]result{
		"BenchmarkB": {"ns/op": 2},
		"BenchmarkA": {"ns/op": 1},
	}
	a, err := render(parsed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := render(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("render not deterministic")
	}
	if strings.Index(string(a), "BenchmarkA") > strings.Index(string(a), "BenchmarkB") {
		t.Fatalf("names not sorted:\n%s", a)
	}
}

// Command swiftrun executes a mini-Swift script against a JETS engine — the
// paper's MPICH/Coasters form (§5.2): the script's app calls become JETS
// jobs; apps annotated "mpi <n>" are decomposed into proxy launches and
// wired up over sockets.
//
// Usage:
//
//	swiftrun -workers 8 script.swift
//
// App commands run as real subprocesses.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"jets/internal/core"
	"jets/internal/hydra"
	"jets/internal/swiftlang"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "swiftrun:", err)
		os.Exit(1)
	}
}

// argList collects repeatable -arg name=value flags.
type argList map[string]string

func (a argList) String() string { return fmt.Sprint(map[string]string(a)) }

func (a argList) Set(s string) error {
	i := strings.IndexByte(s, '=')
	if i <= 0 {
		return fmt.Errorf("want name=value, got %q", s)
	}
	a[s[:i]] = s[i+1:]
	return nil
}

func run() error {
	workers := flag.Int("workers", 4, "local worker agents")
	workdir := flag.String("workdir", "swift-work", "directory for auto-mapped files")
	timeout := flag.Duration("timeout", time.Hour, "script wall limit")
	args := argList{}
	flag.Var(args, "arg", "script argument name=value (repeatable), read with arg()")
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: swiftrun [flags] script.swift")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	prog, err := swiftlang.Parse(string(src))
	if err != nil {
		return err
	}

	exec := swiftlang.NewJETSExecutor()
	eng, err := core.NewEngine(core.Options{
		LocalWorkers: *workers,
		Runner:       hydra.ExecRunner{},
		OnOutput:     exec.OutputSink,
	})
	if err != nil {
		return err
	}
	defer eng.Close()
	exec.Bind(eng)

	if err := os.MkdirAll(*workdir, 0o755); err != nil {
		return err
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	ctx, cancelT := context.WithTimeout(ctx, *timeout)
	defer cancelT()

	start := time.Now()
	if err := swiftlang.Run(ctx, prog, swiftlang.Config{
		Executor: exec,
		WorkDir:  *workdir,
		Stdout:   os.Stdout,
		Args:     args,
	}); err != nil {
		return err
	}
	st := eng.Dispatcher().Stats()
	fmt.Printf("swiftrun: %d jobs (%d tasks) in %v\n",
		st.JobsCompleted, st.TasksDispatched, time.Since(start).Round(time.Millisecond))
	return nil
}

// Command swiftrun executes a mini-Swift script against a JETS engine — the
// paper's MPICH/Coasters form (§5.2): the script's app calls become JETS
// jobs; apps annotated "mpi <n>" are decomposed into proxy launches and
// wired up over sockets.
//
// Usage:
//
//	swiftrun -workers 8 script.swift
//
// App commands run as real subprocesses.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"jets/internal/core"
	"jets/internal/hydra"
	"jets/internal/obs"
	"jets/internal/proto"
	"jets/internal/swiftlang"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "swiftrun:", err)
		os.Exit(1)
	}
}

// argList collects repeatable -arg name=value flags.
type argList map[string]string

func (a argList) String() string { return fmt.Sprint(map[string]string(a)) }

func (a argList) Set(s string) error {
	i := strings.IndexByte(s, '=')
	if i <= 0 {
		return fmt.Errorf("want name=value, got %q", s)
	}
	a[s[:i]] = s[i+1:]
	return nil
}

// nullRunner accepts every command and exits 0 immediately: the measurement
// configuration for script-side throughput runs (the paper's "sleep 0"
// workload without process-spawn noise).
type nullRunner struct{}

func (nullRunner) Run(ctx context.Context, task *proto.Task, env []string, stdout io.Writer) (int, error) {
	return 0, nil
}

func run() error {
	workers := flag.Int("workers", 4, "local worker agents")
	workdir := flag.String("workdir", "swift-work", "directory for auto-mapped files")
	timeout := flag.Duration("timeout", time.Hour, "script wall limit")
	compile := flag.Bool("compile", true, "lower the script to a static dataflow graph; -compile=0 uses the tree-walking interpreter")
	batch := flag.Int("batch", 0, "max invocations per batched engine submit (0 uses the default)")
	nullExec := flag.Bool("null-exec", false, "run app commands as in-process no-ops (throughput measurement)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof, and /healthz on this address (empty disables)")
	args := argList{}
	flag.Var(args, "arg", "script argument name=value (repeatable), read with arg()")
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: swiftrun [flags] script.swift")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	prog, err := swiftlang.Parse(string(src))
	if err != nil {
		return err
	}

	exec := swiftlang.NewJETSExecutor()
	exec.BatchMax = *batch
	var runner hydra.Runner = hydra.ExecRunner{}
	if *nullExec {
		runner = nullRunner{}
	}
	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		swiftlang.RegisterMetrics(reg)
	}
	eng, err := core.NewEngine(core.Options{
		LocalWorkers: *workers,
		Runner:       runner,
		OnOutput:     exec.OutputSink,
		Obs:          reg,
	})
	if err != nil {
		return err
	}
	defer eng.Close()
	exec.Bind(eng)
	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		defer srv.Close()
		fmt.Printf("swiftrun: metrics on http://%s/metrics\n", srv.Addr())
	}

	if err := os.MkdirAll(*workdir, 0o755); err != nil {
		return err
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	ctx, cancelT := context.WithTimeout(ctx, *timeout)
	defer cancelT()

	start := time.Now()
	if err := swiftlang.Run(ctx, prog, swiftlang.Config{
		Executor: exec,
		WorkDir:  *workdir,
		Stdout:   os.Stdout,
		Args:     args,
		Compile:  *compile,
	}); err != nil {
		return err
	}
	st := eng.Dispatcher().Stats()
	fmt.Printf("swiftrun: %d jobs (%d tasks) in %v\n",
		st.JobsCompleted, st.TasksDispatched, time.Since(start).Round(time.Millisecond))
	return nil
}

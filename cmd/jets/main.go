// Command jets is the stand-alone JETS tool (paper §5.1): it reads a job
// list, schedules the jobs over pilot-job workers, and prints per-batch
// statistics including Eq. (1) utilization.
//
// Usage:
//
//	jets -input jobs.txt -workers 8
//	jets -input jobs.txt -listen 0.0.0.0:7001        # external workers
//
// Input format, one job per line:
//
//	MPI: 4 namd2.sh input-1.pdb output-1.log
//	SEQ: hostname -f
//	hostname -f
//
// Commands run as real subprocesses (hydra.ExecRunner). MPI jobs receive the
// PMI_* environment, so executables built against jets' internal/mpi (or any
// PMI-1 client) wire up with their peers automatically.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"jets/internal/alerts"
	"jets/internal/core"
	"jets/internal/dispatch"
	"jets/internal/hydra"
	"jets/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jets:", err)
		os.Exit(1)
	}
}

func run() error {
	input := flag.String("input", "", "job list file ('-' for stdin)")
	workers := flag.Int("workers", 4, "local worker agents to start")
	cores := flag.Int("cores", 1, "cores reported per local worker")
	retries := flag.Int("retries", 0, "automatic retries for jobs lost to worker faults")
	timeout := flag.Duration("timeout", 0, "per-job wall limit (0 = none)")
	batchTimeout := flag.Duration("batch-timeout", time.Hour, "whole-batch limit")
	priority := flag.Bool("priority", false, "use the priority+backfill queue instead of FIFO (forces -shards 1)")
	shards := flag.Int("shards", 0, "scheduling shards in the dispatcher (0 = derive from GOMAXPROCS)")
	outDir := flag.String("output", "", "directory for task stdout files (empty discards)")
	format := flag.String("format", "lines", "input format: lines (MPI:/SEQ:) or json")
	tracePath := flag.String("trace", "", "write a JSON-lines dispatcher event trace to this file")
	coalesce := flag.Int("write-coalesce", 16, "max outbound frames batched per flush on each worker connection (<=1 disables)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof, and /healthz on this address (e.g. 127.0.0.1:9090; empty disables)")
	listen := flag.String("listen", "", "dispatcher listen address for external workers (e.g. 0.0.0.0:7001; empty binds an ephemeral loopback port)")
	federate := flag.Int("federate", 1, "dispatcher instances to run behind the work router (>=2 federates)")
	peers := flag.String("peers", "", "comma-separated addresses of external dispatcher instances to federate with")
	dataDir := flag.String("data-dir", "", "directory for the crash-safe dispatcher journal; on restart, uncompleted jobs from a previous run are recovered and re-run (empty disables durability)")
	hotQueue := flag.Int("hot-queue", 0, "max fully-hydrated queued jobs held in memory per scheduling shard; the excess backlog spills to disk (0 = default, negative disables spilling)")
	alertsOn := flag.Bool("alerts", false, "evaluate the default self-monitoring alert rules (log warnings, export jets_alert_firing, fail /healthz on critical rules)")
	alertRules := flag.String("alert-rules", "", "load additional alert rules from this file (see internal/alerts.ParseRules; implies -alerts sources)")
	flag.Parse()

	if *input == "" {
		return fmt.Errorf("-input is required (see -h)")
	}
	in := os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	var onOutput func(taskID, stream string, data []byte)
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		sink := newOutputDir(*outDir)
		defer sink.Close()
		onOutput = sink.Write
	}

	var queue dispatch.QueuePolicy
	if *priority {
		queue = dispatch.NewPriorityQueue(true)
	}
	var tracer *dispatch.TraceRecorder
	var onEvent func(dispatch.Event)
	if *tracePath != "" {
		tracer = &dispatch.TraceRecorder{}
		onEvent = tracer.Record
	}
	var reg *obs.Registry
	if *metricsAddr != "" || *alertsOn || *alertRules != "" {
		// Alerts resolve file rules against the registry and export firing
		// gauges through it, so they need one even when it is not served.
		reg = obs.NewRegistry()
	}
	eng, err := core.NewEngine(core.Options{
		LocalWorkers:   *workers,
		CoresPerWorker: *cores,
		Runner:         hydra.ExecRunner{},
		ListenAddr:     *listen,
		MaxJobRetries:  *retries,
		JobTimeout:     *timeout,
		Queue:          queue,
		Shards:         *shards,
		OnOutput:       onOutput,
		OnEvent:        onEvent,
		WriteCoalesce:  *coalesce,
		Obs:            reg,
		DataDir:        *dataDir,
		HotQueueJobs:   *hotQueue,
		Federate:       *federate,
		FederatePeers:  splitPeers(*peers),
	})
	if err != nil {
		return err
	}
	defer eng.Close()
	if addrs := eng.Addrs(); len(addrs) > 1 {
		fmt.Printf("jets: %d federated dispatchers on %v, %d local workers\n", len(addrs), addrs, *workers)
	} else {
		fmt.Printf("jets: dispatcher on %s, %d local workers\n", eng.Addr(), *workers)
	}
	recovered := eng.RecoveredJobs()
	if rerr := eng.RecoveryError(); rerr != nil {
		fmt.Fprintf(os.Stderr, "jets: journal replay: %v (recovery is partial)\n", rerr)
	}
	if len(recovered) > 0 {
		fmt.Printf("jets: recovered %d uncompleted jobs from %s\n", len(recovered), *dataDir)
	}
	var alertEngine *alerts.Engine
	if *alertsOn || *alertRules != "" {
		alertEngine, err = alerts.NewEngine(alerts.Config{Registry: reg},
			alerts.ForDispatcher(eng.Dispatcher())...)
		if err != nil {
			return err
		}
		if *alertRules != "" {
			f, err := os.Open(*alertRules)
			if err != nil {
				return err
			}
			rules, err := alerts.ParseRules(f, reg)
			f.Close()
			if err != nil {
				return err
			}
			if err := alertEngine.Add(rules...); err != nil {
				return err
			}
		}
		alertEngine.Start()
		defer alertEngine.Close()
		fmt.Printf("jets: alerts: %d rules, 1s evaluation\n", alertEngine.Rules())
	}
	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		defer srv.Close()
		if alertEngine != nil {
			srv.SetHealth(alertEngine.Health)
		}
		fmt.Printf("jets: metrics on http://%s/metrics (also /debug/vars, /debug/pprof, /healthz)\n", srv.Addr())
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	ctx, cancelT := context.WithTimeout(ctx, *batchTimeout)
	defer cancelT()

	handler, err := core.HandlerFor(*format)
	if err != nil {
		return err
	}
	rep, err := eng.RunHandler(ctx, handler, in)
	if err != nil {
		return err
	}
	// The batch above only covers this run's submissions; jobs inherited
	// from a crashed predecessor complete on the same workers and are
	// reported separately.
	recFailed := 0
	for _, h := range recovered {
		select {
		case <-h.Done():
		case <-ctx.Done():
			return ctx.Err()
		}
		if res, ok := h.TryResult(); ok && res.Failed {
			recFailed++
			fmt.Printf("FAILED %s (recovered): %s\n", res.JobID, res.Err)
		}
	}
	if len(recovered) > 0 {
		fmt.Printf("recovered:   %d jobs (%d failed)\n", len(recovered), recFailed)
	}
	if tracer != nil {
		// Close (idempotent) flushes the dispatcher's buffered event tail
		// before the trace is written, so the file carries the full batch.
		eng.Close()
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := tracer.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace:       %s (%d events)\n", *tracePath, tracer.Count(""))
	}
	fmt.Print(core.FormatReport(rep))
	for _, r := range rep.Results {
		if r.Failed {
			fmt.Printf("FAILED %s: %s\n", r.JobID, r.Err)
		}
	}
	if n := rep.Failed() + recFailed; n > 0 {
		return fmt.Errorf("%d jobs failed", n)
	}
	return nil
}

// outputDir appends task output chunks to one file per task.
type outputDir struct {
	dir   string
	files map[string]*os.File
}

func newOutputDir(dir string) *outputDir {
	return &outputDir{dir: dir, files: map[string]*os.File{}}
}

func (o *outputDir) Write(taskID, stream string, data []byte) {
	f, ok := o.files[taskID]
	if !ok {
		var err error
		f, err = os.Create(o.dir + "/" + sanitize(taskID) + ".out")
		if err != nil {
			return
		}
		o.files[taskID] = f
	}
	f.Write(data)
}

func (o *outputDir) Close() {
	for _, f := range o.files {
		f.Close()
	}
}

func splitPeers(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func sanitize(s string) string {
	out := []byte(s)
	for i, c := range out {
		if c == '/' || c == ':' {
			out[i] = '_'
		}
	}
	return string(out)
}
